//! Seeded tidy violations (fixture — never compiled). Mirrors the real
//! `crates/wattch/src/energy.rs` path so the energy-module rules apply.

// Violation: bare f64 quantity in a public energy-module signature.
pub fn read_energy_joules(accesses: u64, per_access: f64) -> f64 {
    // Violation: undocumented lossy cast.
    accesses as f64 * per_access
}

pub fn lookup(table: &[f64], idx: usize) -> f64 {
    // Violation: unwrap in library code.
    table.get(idx).copied().unwrap()
}
