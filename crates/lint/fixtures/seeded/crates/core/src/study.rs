//! Seeded tidy violation (fixture — never compiled). Mirrors the real
//! `crates/core/src/study.rs` path so the lock-order rule applies.

fn get_or_run(&self, key: &RunKey) -> RunResult {
    let mut shard = self.shard(key).lock().expect("cache shard lock");
    if let Some(hit) = shard.get(key) {
        return hit.clone();
    }
    // Violation: blocking on the inflight table while the shard guard is
    // still live — the deadlock pattern the sharded design forbids.
    self.inflight.wait(key);
    drop(shard);
    self.run_uncached(key)
}
