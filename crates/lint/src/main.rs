//! Tidy entry point: `cargo run -p lint [root]`.
//!
//! Scans the workspace (or the given root) and exits non-zero if any rule
//! fires. Meant to be cheap enough to run on every push.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let violations = match lint::scan_root(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!(
        "lint: {} violation(s); suppress intentional ones with \
         `// lint: allow(<rule>): <reason>`",
        violations.len()
    );
    ExitCode::FAILURE
}
