//! Repo tidy lint (rust-tidy style: plain-text scanning, no external
//! dependencies, no network).
//!
//! Eleven rule families, each suppressible only by an explicit, reasoned
//! marker comment — `// lint: allow(<rule>): <reason>` on the offending
//! line or within [`MARKER_WINDOW`] lines above it:
//!
//! * **`raw-f64`** — public functions in the energy/pricing modules must
//!   not expose bare `f64` quantities; dimensioned values go through the
//!   `units` newtypes (dimensionless ratios carry a marker saying so).
//! * **`lossy-cast`** — `as f64` conversions in those modules lose
//!   precision silently; each one must be documented as exact or routed
//!   through a named conversion.
//! * **`unwrap`** — `.unwrap()` / `.expect(` outside `#[cfg(test)]`
//!   modules; library code propagates errors, and the few structurally
//!   infallible sites say why.
//! * **`lock-order`** — in the sharded run-cache (`core::study`,
//!   `core::parallel`), a live shard guard must be dropped before any
//!   other `.lock(`/`.wait(` call; holding it across a blocking call is
//!   the deadlock pattern the shard design exists to prevent.
//! * **`typed-constant`** — in the Table-2 geometry modules
//!   (`core::pricing`, `leakctl::economics`), the machine-configuration
//!   numbers (cell ratio 32.0, 1024 lines, 512 line bits, 30 tag bits)
//!   have named constants; repeating the bare literal silently forks the
//!   configuration when one copy is edited.
//! * **`server-boundary`** — sockets (`std::net`) and thread spawning
//!   live in exactly two places: the `studyd` server crate and
//!   `core::parallel` (the workspace's one fanout primitive). Anywhere
//!   else, ad-hoc concurrency bypasses the job queue's backpressure and
//!   the deterministic ordered-map discipline.
//! * **`no-alloc-in-sweep`** — the decay timing wheel
//!   (`cachesim::wheel`) promises zero steady-state allocation: every
//!   schedule/cancel/advance runs on preallocated parallel arrays, so any
//!   allocating construct there (`vec!`, `Vec::new`, `.collect()`,
//!   `Box::new`, `format!`, …) is either one-time construction (marked as
//!   such) or a hot-path regression.
//! * **`no-sleep-while-locked`** — in the server and concurrency core
//!   (`crates/studyd`, `crates/core`), a live `MutexGuard` must not be
//!   held across a sleep or blocking I/O call; every other thread that
//!   touches the mutex stalls for the full duration. Condvar `.wait(` is
//!   exempt — it releases the lock while blocked, which is the sanctioned
//!   way to wait under a guard.
//! * **`feature-smoke`** — every `*-bug` cargo feature in a workspace
//!   manifest is a seeded mutation whose whole value is the CI negative
//!   smoke that proves the suite still catches it. A feature name absent
//!   from `.github/workflows/` is a smoke test that silently stopped
//!   running (or never existed).
//! * **`no-wallclock-in-leakage`** — the timing-leakage harness
//!   (`crates/leakage`) reports attacker-visible *simulated* latencies;
//!   every number it emits must be a pure function of the seed. Any
//!   wall-clock construct (`std::time`, `Instant::now(`, `SystemTime`)
//!   there — test modules included — injects host noise into a security
//!   measurement.
//!
//! The scanner is deliberately line-based: the codebase is rustfmt-clean,
//! so declarations and statements land on predictable lines, and a dumb
//! scanner that anyone can read beats a syntax-aware one nobody audits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How many lines above an offending line a `// lint: allow(...)` marker
/// is honored (statements and attribute stacks span a few lines).
pub const MARKER_WINDOW: usize = 4;

/// Modules whose public signatures and casts carry physical quantities;
/// matched as path suffixes so the seeded fixture tree mirrors them.
pub const ENERGY_MODULES: &[&str] = &[
    "crates/wattch/src/energy.rs",
    "crates/wattch/src/ledger.rs",
    "crates/wattch/src/cacti.rs",
    "crates/core/src/pricing.rs",
    "crates/leakctl/src/economics.rs",
    "crates/leakctl/src/technique.rs",
];

/// Files holding the sharded-lock discipline.
pub const LOCK_ORDER_FILES: &[&str] = &["crates/core/src/study.rs", "crates/core/src/parallel.rs"];

/// Modules where the Table-2 machine configuration is spelled out; bare
/// copies of its numbers belong behind the named constants.
pub const TYPED_CONSTANT_FILES: &[&str] = &[
    "crates/core/src/pricing.rs",
    "crates/leakctl/src/economics.rs",
];

/// Where sockets and thread spawning are legitimate: the study server
/// crate and the fleet tier (path prefixes — `fleet` owns the peer TCP
/// client; it ships bytes and never touches files, so it stays outside
/// the `fs-boundary` allowance) and the workspace's one thread-fanout
/// primitive (path suffix). Everywhere else, `server-boundary` fires.
pub const SERVER_BOUNDARY_CRATES: &[&str] = &["crates/studyd/", "crates/fleet/"];

/// Suffix-matched files also allowed to spawn threads.
pub const SERVER_BOUNDARY_FILES: &[&str] = &["crates/core/src/parallel.rs"];

/// Where direct filesystem access is legitimate: the persistent run
/// store crate (path prefix). Everywhere else `fs-boundary` fires —
/// durability invariants (checksums, torn-tail recovery, read-back
/// verification) live in `runstore`, and ad-hoc `std::fs` calls bypass
/// them. Bench binaries that emit JSON artifacts carry explicit
/// markers.
pub const FS_BOUNDARY_CRATES: &[&str] = &["crates/runstore/"];

/// Files on the decay hot path that promise zero steady-state allocation.
pub const NO_ALLOC_FILES: &[&str] = &["crates/cachesim/src/wheel.rs"];

/// Crates whose emitted numbers must be pure functions of the seed
/// (prefix-matched): the timing-leakage harness. All timing there is
/// simulated [`units::Cycles`]; a wall-clock read anywhere in the crate
/// injects host noise into a security measurement.
pub const WALLCLOCK_FREE_CRATES: &[&str] = &["crates/leakage/"];

/// Wall-clock constructs forbidden in [`WALLCLOCK_FREE_CRATES`]. The
/// bare `std::time` token also catches `use` imports and
/// `Duration`-producing clock reads spelled through the module path.
pub const WALLCLOCK_TOKENS: &[&str] = &["std::time", "Instant::now(", "SystemTime"];

/// Crates whose lock guards must not be held across sleeps or blocking
/// I/O (prefix-matched): the study server and the concurrency core. Both
/// sit on the request path, so a guard held through a stall serializes
/// every peer behind one slow syscall.
pub const NO_SLEEP_LOCK_CRATES: &[&str] = &["crates/studyd/", "crates/core/"];

/// Calls that park the calling thread for arbitrarily long. Condvar
/// `.wait(` is deliberately absent: it releases the guard while blocked.
pub const BLOCKING_TOKENS: &[&str] = &[
    "thread::sleep(",
    ".write_all(",
    ".read_line(",
    ".read_exact(",
    ".read_until(",
    ".recv(",
    ".recv_timeout(",
    ".accept(",
];

/// Allocating constructs forbidden in [`NO_ALLOC_FILES`] without a marker.
pub const ALLOC_TOKENS: &[&str] = &[
    "vec![",
    "Vec::new(",
    "Vec::with_capacity(",
    "Box::new(",
    ".collect(",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
    "String::new(",
    "String::from(",
    "format!(",
    "HashMap::new(",
    "BTreeMap::new(",
];

/// The Table-2 numbers with named constants (`L2_TO_L1_CELL_RATIO`,
/// `TABLE2_L1D_LINES`, `TABLE2_LINE_BITS`, `TABLE2_TAG_BITS`): a bare
/// occurrence outside the defining `const` duplicates the configuration.
pub const TABLE2_LITERALS: &[&str] = &["32.0", "1024", "512", "30"];

/// The rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Bare `f64` in a public signature of an energy/pricing module.
    RawF64PublicSig,
    /// Undocumented `as f64` cast in an energy/pricing module.
    LossyCast,
    /// `.unwrap()` / `.expect(` outside test code.
    UnwrapOutsideTests,
    /// Another lock acquired while a shard guard is live.
    LockOrder,
    /// A bare Table-2 literal shadowing its named constant.
    TypedConstant,
    /// `std::net` or thread spawning outside the server crate and the
    /// parallel fanout primitive.
    ServerBoundary,
    /// `std::fs` outside the persistent run-store crate.
    FsBoundary,
    /// An allocating construct on the zero-allocation decay hot path.
    NoAllocInSweep,
    /// A sleep or blocking I/O call while a lock guard is live.
    NoSleepWhileLocked,
    /// A seeded `*-bug` cargo feature with no CI negative-smoke step.
    FeatureSmoke,
    /// A wall-clock construct inside the timing-leakage harness.
    NoWallclockInLeakage,
}

impl Rule {
    /// The marker name that suppresses this rule.
    pub fn marker(self) -> &'static str {
        match self {
            Rule::RawF64PublicSig => "raw-f64",
            Rule::LossyCast => "lossy-cast",
            Rule::UnwrapOutsideTests => "unwrap",
            Rule::LockOrder => "lock-order",
            Rule::TypedConstant => "typed-constant",
            Rule::ServerBoundary => "server-boundary",
            Rule::FsBoundary => "fs-boundary",
            Rule::NoAllocInSweep => "no-alloc-in-sweep",
            Rule::NoSleepWhileLocked => "no-sleep-while-locked",
            Rule::FeatureSmoke => "feature-smoke",
            Rule::NoWallclockInLeakage => "no-wallclock-in-leakage",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.marker())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

fn has_marker(lines: &[&str], idx: usize, rule: Rule) -> bool {
    let needle = format!("lint: allow({})", rule.marker());
    let lo = idx.saturating_sub(MARKER_WINDOW);
    lines[lo..=idx].iter().any(|l| l.contains(&needle))
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#!")
}

/// Net brace depth change of one line, ignoring braces inside string
/// literals and line comments (good enough for rustfmt-formatted code).
fn brace_delta(line: &str) -> i32 {
    let code = line.split("//").next().unwrap_or(line);
    let mut depth = 0i32;
    let mut in_str = false;
    let mut prev = ' ';
    for c in code.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            _ => {}
        }
        prev = c;
    }
    depth
}

/// Tracks which lines sit inside `#[cfg(test)] mod` blocks.
fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i32;
    let mut pending_cfg_test = false;
    let mut test_depth: Option<i32> = None;
    for (i, line) in lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let before = depth;
        depth += brace_delta(line);
        if pending_cfg_test && line.contains("mod ") && line.contains('{') {
            test_depth = Some(before + 1);
            pending_cfg_test = false;
        }
        if let Some(td) = test_depth {
            mask[i] = true;
            if depth < td {
                test_depth = None;
            }
        }
    }
    mask
}

fn path_matches(rel: &Path, suffixes: &[&str]) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    suffixes.iter().any(|s| p.ends_with(s))
}

fn check_raw_f64(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if in_test[i] || is_comment(line) || !line.trim_start().starts_with("pub fn") {
            i += 1;
            continue;
        }
        // Accumulate the signature until the body opens (or `;` for trait
        // methods).
        let mut sig = String::new();
        let mut j = i;
        while j < lines.len() {
            let l = lines[j].split("//").next().unwrap_or(lines[j]);
            sig.push_str(l);
            sig.push(' ');
            if l.contains('{') || l.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        let sig = sig.split('{').next().unwrap_or(&sig);
        if sig.contains("f64") && !has_marker(lines, i, Rule::RawF64PublicSig) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::RawF64PublicSig,
                excerpt: line.trim().to_string(),
            });
        }
        i = j + 1;
    }
}

fn check_lossy_cast(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("// ").next().unwrap_or(line);
        if code.contains(" as f64") && !has_marker(lines, i, Rule::LossyCast) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::LossyCast,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

fn check_unwrap(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("// ").next().unwrap_or(line);
        if (code.contains(".unwrap()") || code.contains(".expect("))
            && !has_marker(lines, i, Rule::UnwrapOutsideTests)
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::UnwrapOutsideTests,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// Guard-liveness scan: from a `let ... shard = ... .lock()` binding until
/// the matching `drop(shard)` (or the end of the binding's block), any
/// further `.lock(` or `.wait(` acquisition is a lock-order violation.
fn check_lock_order(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    let mut depth = 0i32;
    let mut guard: Option<(i32, usize)> = None; // (binding depth, line)
    for (i, line) in lines.iter().enumerate() {
        let before = depth;
        depth += brace_delta(line);
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("//").next().unwrap_or(line);
        if let Some((gd, _)) = guard {
            if depth < gd || code.contains("drop(shard)") {
                guard = None;
            } else if (code.contains(".lock(") || code.contains(".wait("))
                && !has_marker(lines, i, Rule::LockOrder)
            {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: Rule::LockOrder,
                    excerpt: line.trim().to_string(),
                });
                guard = None; // one report per held guard
                continue;
            }
        }
        // A new shard-guard binding (possibly re-binding) starts liveness.
        let t = code.trim_start();
        if (t.starts_with("let mut shard") || t.starts_with("let shard")) && code.contains(".lock(")
        {
            guard = Some((before, i));
        }
    }
}

/// True if `text[start..start + lit.len()]` is a standalone numeric token:
/// not embedded in a longer number (`512` in `1512` or `30` in `383.15`),
/// an identifier, or a digit-grouped literal (`100_000`).
fn standalone_number(text: &str, start: usize, lit: &str) -> bool {
    let boundary = |c: Option<char>| match c {
        None => true,
        Some(c) => !c.is_ascii_alphanumeric() && c != '_' && c != '.',
    };
    boundary(text[..start].chars().next_back())
        && boundary(text[start + lit.len()..].chars().next())
}

fn check_typed_constant(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("//").next().unwrap_or(line);
        // The named definitions themselves are the one legitimate home.
        if code.contains("const ") {
            continue;
        }
        let fired = TABLE2_LITERALS.iter().any(|lit| {
            code.match_indices(lit)
                .any(|(pos, _)| standalone_number(code, pos, lit))
        });
        if fired && !has_marker(lines, i, Rule::TypedConstant) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::TypedConstant,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// True if `rel` may touch sockets and spawn threads.
fn server_boundary_allowed(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    SERVER_BOUNDARY_CRATES
        .iter()
        .any(|c| p.starts_with(c) || p.contains(&format!("/{c}")))
        || path_matches(rel, SERVER_BOUNDARY_FILES)
}

fn check_server_boundary(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("// ").next().unwrap_or(line);
        // `thread::spawn(`, `std::thread::spawn(`, and `scope.spawn(`
        // all end in one of these two spellings.
        let spawns = code.contains("::spawn(") || code.contains(".spawn(");
        if (code.contains("std::net") || spawns) && !has_marker(lines, i, Rule::ServerBoundary) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::ServerBoundary,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// True if `rel` may touch the filesystem directly.
fn fs_boundary_allowed(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    FS_BOUNDARY_CRATES
        .iter()
        .any(|c| p.starts_with(c) || p.contains(&format!("/{c}")))
}

fn check_fs_boundary(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("// ").next().unwrap_or(line);
        // `std::fs::...` call sites and `use std::fs...` imports both
        // carry this spelling.
        if code.contains("std::fs") && !has_marker(lines, i, Rule::FsBoundary) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::FsBoundary,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

fn check_no_alloc(rel: &Path, lines: &[&str], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("// ").next().unwrap_or(line);
        if ALLOC_TOKENS.iter().any(|t| code.contains(t))
            && !has_marker(lines, i, Rule::NoAllocInSweep)
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::NoAllocInSweep,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// True if `rel` sits in a crate whose guards must stay stall-free.
fn no_sleep_lock_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    NO_SLEEP_LOCK_CRATES
        .iter()
        .any(|c| p.starts_with(c) || p.contains(&format!("/{c}")))
}

/// The bound name if `code` is a `let` statement taking a lock guard —
/// either a direct `.lock(` call or the workspace's poison-sanitizing
/// `lock(` helper.
fn guard_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    if !(code.contains(".lock(") || code.contains("= lock(") || code.contains("::lock(")) {
        return None;
    }
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Guard-liveness scan generalizing [`check_lock_order`]: from any
/// `let [mut] g = ...lock(...)` binding until `drop(g)` (or the end of
/// the binding's block), a sleep or blocking I/O call holds the mutex
/// for unbounded time and stalls every peer behind it.
fn check_no_sleep_while_locked(
    rel: &Path,
    lines: &[&str],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    let mut depth = 0i32;
    let mut guards: Vec<(String, i32)> = Vec::new(); // (name, binding depth)
    for (i, line) in lines.iter().enumerate() {
        let before = depth;
        depth += brace_delta(line);
        if in_test[i] || is_comment(line) {
            continue;
        }
        let code = line.split("//").next().unwrap_or(line);
        guards.retain(|(name, gd)| depth >= *gd && !code.contains(&format!("drop({name})")));
        if !guards.is_empty()
            && BLOCKING_TOKENS.iter().any(|t| code.contains(t))
            && !has_marker(lines, i, Rule::NoSleepWhileLocked)
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::NoSleepWhileLocked,
                excerpt: line.trim().to_string(),
            });
            guards.clear(); // one report per held-guard region
            continue;
        }
        if let Some(name) = guard_binding(code) {
            guards.push((name, before));
        }
    }
}

/// True if `rel` sits in a crate whose numbers must be seed-pure.
fn wallclock_free_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    WALLCLOCK_FREE_CRATES
        .iter()
        .any(|c| p.starts_with(c) || p.contains(&format!("/{c}")))
}

/// Flags every wall-clock construct in the leakage harness. Unlike the
/// other content rules this one fires inside `#[cfg(test)]` modules
/// too: a wall-clock read in a harness unit test is still host
/// nondeterminism feeding a security measurement.
fn check_no_wallclock(rel: &Path, lines: &[&str], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        let code = line.split("// ").next().unwrap_or(line);
        if WALLCLOCK_TOKENS.iter().any(|t| code.contains(t))
            && !has_marker(lines, i, Rule::NoWallclockInLeakage)
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::NoWallclockInLeakage,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// Scans one manifest's `[features]` section: every `*-bug` feature is a
/// seeded mutation, and its whole value is the CI negative-smoke step
/// that proves the suite still catches it — so each name must appear
/// somewhere in the workflow text. Suppressible with a
/// `# lint: allow(feature-smoke): <reason>` comment above the feature.
pub fn check_feature_smoke(rel: &Path, manifest: &str, workflow: &str) -> Vec<Violation> {
    let lines: Vec<&str> = manifest.lines().collect();
    let mut out = Vec::new();
    let mut in_features = false;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            in_features = t == "[features]";
            continue;
        }
        if !in_features || t.starts_with('#') {
            continue;
        }
        let Some((name, _)) = t.split_once('=') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if !name.ends_with("-bug")
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            continue;
        }
        if !workflow.contains(name) && !has_marker(&lines, i, Rule::FeatureSmoke) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: Rule::FeatureSmoke,
                excerpt: t.to_string(),
            });
        }
    }
    out
}

/// Scans one file's content; `rel` decides which rules apply.
pub fn scan_content(rel: &Path, content: &str) -> Vec<Violation> {
    let lines: Vec<&str> = content.lines().collect();
    let in_test = test_mask(&lines);
    let mut out = Vec::new();
    if path_matches(rel, ENERGY_MODULES) {
        check_raw_f64(rel, &lines, &in_test, &mut out);
        check_lossy_cast(rel, &lines, &in_test, &mut out);
    }
    if path_matches(rel, LOCK_ORDER_FILES) {
        check_lock_order(rel, &lines, &in_test, &mut out);
    }
    if path_matches(rel, TYPED_CONSTANT_FILES) {
        check_typed_constant(rel, &lines, &in_test, &mut out);
    }
    if !server_boundary_allowed(rel) {
        check_server_boundary(rel, &lines, &in_test, &mut out);
    }
    if !fs_boundary_allowed(rel) {
        check_fs_boundary(rel, &lines, &in_test, &mut out);
    }
    if path_matches(rel, NO_ALLOC_FILES) {
        check_no_alloc(rel, &lines, &in_test, &mut out);
    }
    if no_sleep_lock_scope(rel) {
        check_no_sleep_while_locked(rel, &lines, &in_test, &mut out);
    }
    if wallclock_free_scope(rel) {
        check_no_wallclock(rel, &lines, &mut out);
    }
    check_unwrap(rel, &lines, &in_test, &mut out);
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            files.push(path);
        }
    }
    Ok(())
}

/// True if `rel` is library/binary source the tidy rules govern: `src/`
/// trees of the workspace crates and the root package. Shims are vendored
/// API stubs, and the lint crate itself names the forbidden patterns.
fn in_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    if p.starts_with("shims/") || p.starts_with("crates/lint/") {
        return false;
    }
    let src_tree = p.starts_with("src/") || (p.starts_with("crates/") && p.contains("/src/"));
    src_tree && !p.contains("/tests/") && !p.contains("/benches/")
}

/// True if `rel` is a manifest whose `*-bug` features CI must smoke: the
/// workspace root and the member crates. Shims are vendored stubs, and
/// the lint crate names the forbidden patterns (and carries fixtures).
fn manifest_in_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p == "Cargo.toml" || (p.starts_with("crates/") && !p.starts_with("crates/lint/"))
}

/// Concatenated text of every workflow under `root/.github/workflows`;
/// empty when the directory is absent (every `*-bug` feature then fires,
/// which is the right default for a repo that lost its CI config).
fn workflow_text(root: &Path) -> String {
    let mut text = String::new();
    if let Ok(entries) = fs::read_dir(root.join(".github").join("workflows")) {
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            if let Ok(s) = fs::read_to_string(&p) {
                text.push_str(&s);
            }
        }
    }
    text
}

/// Scans a workspace (or fixture) root, applying each rule to the files in
/// its scope. Paths in the returned violations are relative to `root`.
///
/// # Errors
///
/// Returns [`std::io::Error`] if the tree cannot be read.
pub fn scan_root(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let workflow = workflow_text(root);
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if rel.file_name().is_some_and(|n| n == "Cargo.toml") {
            if manifest_in_scope(&rel) {
                let content = fs::read_to_string(&path)?;
                out.extend(check_feature_smoke(&rel, &content, &workflow));
            }
            continue;
        }
        if !in_scope(&rel) {
            continue;
        }
        let content = fs::read_to_string(&path)?;
        out.extend(scan_content(&rel, &content));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(p: &str) -> PathBuf {
        PathBuf::from(p)
    }

    #[test]
    fn raw_f64_in_public_energy_signature_fires() {
        let src = "pub fn read_energy(v: f64) -> f64 {\n    v\n}\n";
        let v = scan_content(&rel("crates/wattch/src/energy.rs"), src);
        assert!(v.iter().any(|v| v.rule == Rule::RawF64PublicSig), "{v:?}");
    }

    #[test]
    fn raw_f64_marker_suppresses() {
        let src = "/// A ratio.\n// lint: allow(raw-f64): dimensionless ratio\npub fn frac() -> f64 {\n    0.5\n}\n";
        let v = scan_content(&rel("crates/wattch/src/energy.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::RawF64PublicSig), "{v:?}");
    }

    #[test]
    fn raw_f64_ignored_outside_energy_modules() {
        let src = "pub fn ipc(&self) -> f64 {\n    1.0\n}\n";
        let v = scan_content(&rel("crates/uarch/src/core.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lossy_cast_fires_and_marker_suppresses() {
        let bad = "fn f(n: usize) -> f64 {\n    n as f64\n}\n";
        let v = scan_content(&rel("crates/core/src/pricing.rs"), bad);
        assert!(v.iter().any(|v| v.rule == Rule::LossyCast), "{v:?}");
        let good =
            "fn f(n: usize) -> f64 {\n    n as f64 // lint: allow(lossy-cast): counts are exact\n}\n";
        let v = scan_content(&rel("crates/core/src/pricing.rs"), good);
        assert!(v.iter().all(|v| v.rule != Rule::LossyCast), "{v:?}");
    }

    #[test]
    fn unwrap_outside_tests_fires() {
        let src = "pub fn f() {\n    let x: Option<u8> = None;\n    x.unwrap();\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnwrapOutsideTests);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unwrap_inside_cfg_test_module_is_fine() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u8>.unwrap();\n    }\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn doc_comment_unwrap_is_fine() {
        let src = "/// ```\n/// thing().unwrap();\n/// ```\npub fn thing() {}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_while_shard_guard_live_fires() {
        let src = "fn f(&self) {\n    let mut shard = self.shard(&key).lock().unwrap();\n    self.inflight.wait();\n    drop(shard);\n}\n";
        let v = scan_content(&rel("crates/core/src/study.rs"), src);
        assert!(v.iter().any(|v| v.rule == Rule::LockOrder), "{v:?}");
    }

    #[test]
    fn lock_after_drop_is_fine() {
        let src = "fn f(&self) {\n    let mut shard = self.shard(&key).lock().unwrap();\n    drop(shard);\n    self.inflight.wait();\n}\n";
        let v = scan_content(&rel("crates/core/src/study.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::LockOrder), "{v:?}");
    }

    #[test]
    fn guard_dies_with_its_block() {
        let src = "fn f(&self) {\n    {\n        let shard = m.lock().unwrap();\n    }\n    other.lock();\n}\n";
        let v = scan_content(&rel("crates/core/src/parallel.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::LockOrder), "{v:?}");
    }

    #[test]
    fn typed_constant_fires_on_bare_table2_literals() {
        let src = "fn arrays() -> (usize, usize) {\n    (1024, 512)\n}\n";
        let v = scan_content(&rel("crates/core/src/pricing.rs"), src);
        assert!(v.iter().any(|v| v.rule == Rule::TypedConstant), "{v:?}");
    }

    #[test]
    fn typed_constant_allows_the_defining_const_and_markers() {
        let src = "pub const TABLE2_L1D_LINES: usize = 1024;\n";
        let v = scan_content(&rel("crates/core/src/pricing.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::TypedConstant), "{v:?}");
        let marked = "// lint: allow(typed-constant): interval menu, not geometry\nlet d = 1024;\n";
        let v = scan_content(&rel("crates/leakctl/src/economics.rs"), marked);
        assert!(v.iter().all(|v| v.rule != Rule::TypedConstant), "{v:?}");
    }

    #[test]
    fn typed_constant_ignores_embedded_digits_and_other_files() {
        // 383.15, 100_000 and 1512 all contain the literals as substrings
        // but are different numbers; other modules are out of scope.
        let src = "fn f() {\n    let t = 383.15;\n    let n = 100_000;\n    let x = 1512;\n}\n";
        let v = scan_content(&rel("crates/leakctl/src/economics.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::TypedConstant), "{v:?}");
        let elsewhere = "fn f() -> u64 {\n    1024\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), elsewhere);
        assert!(v.iter().all(|v| v.rule != Rule::TypedConstant), "{v:?}");
    }

    #[test]
    fn sockets_and_spawns_fire_outside_the_server_boundary() {
        let net = "use std::net::TcpListener;\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), net);
        assert!(v.iter().any(|v| v.rule == Rule::ServerBoundary), "{v:?}");

        let spawn = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let v = scan_content(&rel("crates/core/src/figures.rs"), spawn);
        assert!(v.iter().any(|v| v.rule == Rule::ServerBoundary), "{v:?}");

        let scoped = "fn f() {\n    scope.spawn(|| {});\n}\n";
        let v = scan_content(&rel("src/lib.rs"), scoped);
        assert!(v.iter().any(|v| v.rule == Rule::ServerBoundary), "{v:?}");
    }

    #[test]
    fn server_boundary_allows_studyd_parallel_tests_and_markers() {
        let net = "use std::net::TcpListener;\nfn f() {\n    std::thread::spawn(|| {});\n}\n";
        for allowed in [
            "crates/studyd/src/server.rs",
            "crates/studyd/src/client.rs",
            "crates/core/src/parallel.rs",
        ] {
            let v = scan_content(&rel(allowed), net);
            assert!(
                v.iter().all(|v| v.rule != Rule::ServerBoundary),
                "{allowed}: {v:?}"
            );
        }

        let in_test = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        std::thread::spawn(|| {}).join();\n    }\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), in_test);
        assert!(v.iter().all(|v| v.rule != Rule::ServerBoundary), "{v:?}");

        let marked =
            "// lint: allow(server-boundary): one-shot telemetry probe\nuse std::net::UdpSocket;\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), marked);
        assert!(v.iter().all(|v| v.rule != Rule::ServerBoundary), "{v:?}");
    }

    #[test]
    fn fleet_owns_sockets_but_never_the_filesystem() {
        // The fleet crate is inside the server boundary (it owns the
        // peer TCP client)...
        let net = "use std::net::TcpStream;\n";
        let v = scan_content(&rel("crates/fleet/src/client.rs"), net);
        assert!(v.iter().all(|v| v.rule != Rule::ServerBoundary), "{v:?}");

        // ...but stays outside the fs boundary: it ships bytes and
        // hands them to runstore, which owns all disk access.
        let fs = "use std::fs;\nfn land(p: &str) {\n    let _ = std::fs::write(p, b\"seg\");\n}\n";
        let v = scan_content(&rel("crates/fleet/src/shipper.rs"), fs);
        assert!(v.iter().any(|v| v.rule == Rule::FsBoundary), "{v:?}");
    }

    #[test]
    fn fs_access_fires_outside_the_store_boundary() {
        let import = "use std::fs;\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), import);
        assert!(v.iter().any(|v| v.rule == Rule::FsBoundary), "{v:?}");

        let write = "fn f() {\n    let _ = std::fs::write(\"out.json\", \"{}\");\n}\n";
        let v = scan_content(&rel("crates/bench/src/bin/figures.rs"), write);
        assert!(v.iter().any(|v| v.rule == Rule::FsBoundary), "{v:?}");
    }

    #[test]
    fn fs_boundary_allows_runstore_tests_and_markers() {
        let src = "use std::fs;\nfn f() {\n    let _ = std::fs::read(\"seg\");\n}\n";
        let v = scan_content(&rel("crates/runstore/src/lib.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::FsBoundary), "{v:?}");

        let in_test = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::fs::read(\"x\");\n    }\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), in_test);
        assert!(v.iter().all(|v| v.rule != Rule::FsBoundary), "{v:?}");

        let marked = "// lint: allow(fs-boundary): bench artifact emission\nfn f() {\n    let _ = std::fs::write(\"BENCH.json\", \"{}\");\n}\n";
        let v = scan_content(&rel("crates/bench/src/bin/figures.rs"), marked);
        assert!(v.iter().all(|v| v.rule != Rule::FsBoundary), "{v:?}");
    }

    #[test]
    fn alloc_on_the_wheel_hot_path_fires() {
        let src = "fn cascade(&mut self) {\n    let moved: Vec<u32> = self.ids.to_vec();\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/wheel.rs"), src);
        assert!(v.iter().any(|v| v.rule == Rule::NoAllocInSweep), "{v:?}");

        let collect = "fn drain(&mut self) {\n    let due: Vec<u32> = self.iter().collect();\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/wheel.rs"), collect);
        assert!(v.iter().any(|v| v.rule == Rule::NoAllocInSweep), "{v:?}");
    }

    #[test]
    fn alloc_marker_and_test_code_suppress_on_the_hot_path() {
        let marked = "fn new(n: usize) -> Self {\n    // lint: allow(no-alloc-in-sweep): one-time construction\n    let next = vec![0u32; n];\n    Self { next }\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/wheel.rs"), marked);
        assert!(v.iter().all(|v| v.rule != Rule::NoAllocInSweep), "{v:?}");

        let in_test = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let fired = vec![1, 2];\n    }\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/wheel.rs"), in_test);
        assert!(v.iter().all(|v| v.rule != Rule::NoAllocInSweep), "{v:?}");
    }

    #[test]
    fn alloc_is_fine_off_the_hot_path() {
        let src = "fn f() -> Vec<u32> {\n    vec![1, 2]\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAllocInSweep), "{v:?}");
    }

    #[test]
    fn sleep_under_a_live_guard_fires() {
        let src = "fn f(&self) {\n    let mut writer = lock(&self.writer);\n    thread::sleep(POLL_INTERVAL);\n}\n";
        let v = scan_content(&rel("crates/studyd/src/server.rs"), src);
        assert!(
            v.iter().any(|v| v.rule == Rule::NoSleepWhileLocked),
            "{v:?}"
        );

        let io = "fn f(&self) {\n    let g = self.state.lock().expect(\"state\");\n    self.sock.write_all(b\"x\");\n}\n";
        let v = scan_content(&rel("crates/core/src/study.rs"), io);
        assert!(
            v.iter().any(|v| v.rule == Rule::NoSleepWhileLocked),
            "{v:?}"
        );
    }

    #[test]
    fn sleep_after_drop_or_block_end_is_fine() {
        let dropped = "fn f(&self) {\n    let g = self.state.lock().expect(\"state\");\n    drop(g);\n    thread::sleep(POLL_INTERVAL);\n}\n";
        let v = scan_content(&rel("crates/studyd/src/server.rs"), dropped);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoSleepWhileLocked),
            "{v:?}"
        );

        let scoped = "fn f(&self) {\n    {\n        let g = self.state.lock().expect(\"state\");\n    }\n    thread::sleep(POLL_INTERVAL);\n}\n";
        let v = scan_content(&rel("crates/studyd/src/server.rs"), scoped);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoSleepWhileLocked),
            "{v:?}"
        );
    }

    #[test]
    fn condvar_wait_markers_and_other_crates_are_exempt() {
        // `.wait(` releases the guard while blocked — the sanctioned idiom.
        let wait = "fn f(&self) {\n    let mut g = self.state.lock().expect(\"state\");\n    g = self.cv.wait(g).expect(\"wait\");\n}\n";
        let v = scan_content(&rel("crates/studyd/src/queue.rs"), wait);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoSleepWhileLocked),
            "{v:?}"
        );

        let marked = "fn f(&self) {\n    let mut writer = lock(&self.writer);\n    // lint: allow(no-sleep-while-locked): writes are line-atomic by design\n    writer.write_all(b\"x\");\n}\n";
        let v = scan_content(&rel("crates/studyd/src/server.rs"), marked);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoSleepWhileLocked),
            "{v:?}"
        );

        let elsewhere = "fn f(&self) {\n    let g = self.state.lock().expect(\"state\");\n    thread::sleep(POLL_INTERVAL);\n}\n";
        let v = scan_content(&rel("crates/cachesim/src/cache.rs"), elsewhere);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoSleepWhileLocked),
            "{v:?}"
        );
    }

    #[test]
    fn wallclock_in_the_leakage_harness_fires() {
        let import = "use std::time::Instant;\n";
        let v = scan_content(&rel("crates/leakage/src/observer.rs"), import);
        assert!(
            v.iter().any(|v| v.rule == Rule::NoWallclockInLeakage),
            "{v:?}"
        );

        let read = "fn f() {\n    let t = Instant::now();\n}\n";
        let v = scan_content(&rel("crates/leakage/src/sweep.rs"), read);
        assert!(
            v.iter().any(|v| v.rule == Rule::NoWallclockInLeakage),
            "{v:?}"
        );

        // Test modules are NOT exempt: seed-purity is a whole-crate
        // contract for the harness.
        let in_test = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::time::SystemTime::now();\n    }\n}\n";
        let v = scan_content(&rel("crates/leakage/src/metrics.rs"), in_test);
        assert!(
            v.iter().any(|v| v.rule == Rule::NoWallclockInLeakage),
            "{v:?}"
        );
    }

    #[test]
    fn wallclock_markers_comments_and_other_crates_are_exempt() {
        let marked = "// lint: allow(no-wallclock-in-leakage): startup banner only, never measured\nfn f() {\n    let t = Instant::now();\n}\n";
        let v = scan_content(&rel("crates/leakage/src/lib.rs"), marked);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoWallclockInLeakage),
            "{v:?}"
        );

        // Prose mentioning the forbidden tokens is not a violation.
        let comment = "//! Wall-clock time (std::time, Instant::now()) never enters the harness.\npub fn f() {}\n";
        let v = scan_content(&rel("crates/leakage/src/lib.rs"), comment);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoWallclockInLeakage),
            "{v:?}"
        );

        // Outside the harness, wall-clock use is governed by other rules.
        let elsewhere = "use std::time::Instant;\n";
        let v = scan_content(&rel("crates/bench/src/bin/bench_wheel.rs"), elsewhere);
        assert!(
            v.iter().all(|v| v.rule != Rule::NoWallclockInLeakage),
            "{v:?}"
        );
    }

    #[test]
    fn orphan_bug_feature_fires_and_a_smoked_one_passes() {
        let manifest = "[package]\nname = \"q\"\n\n[features]\norphan-race-bug = []\nwheel-bug = []\naudit = []\n";
        let workflow = "run: cargo test --features wheel-bug\n";
        let v = check_feature_smoke(&rel("crates/q/Cargo.toml"), manifest, workflow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FeatureSmoke);
        assert_eq!(v[0].line, 5);
        assert!(v[0].excerpt.contains("orphan-race-bug"), "{v:?}");
    }

    #[test]
    fn feature_smoke_marker_and_non_bug_features_are_exempt() {
        let marked = "[features]\n# lint: allow(feature-smoke): smoke lives in the nightly workflow\nlegacy-race-bug = []\n";
        let v = check_feature_smoke(&rel("Cargo.toml"), marked, "");
        assert!(v.is_empty(), "{v:?}");

        let plain = "[features]\naudit = []\ndefault = [\"audit\"]\n\n[dependencies]\nserde-bug-compat = \"1\"\n";
        let v = check_feature_smoke(&rel("Cargo.toml"), plain, "");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn manifest_scope_covers_root_and_member_crates_only() {
        assert!(manifest_in_scope(&rel("Cargo.toml")));
        assert!(manifest_in_scope(&rel("crates/cachesim/Cargo.toml")));
        assert!(!manifest_in_scope(&rel("shims/serde/Cargo.toml")));
        assert!(!manifest_in_scope(&rel("crates/lint/Cargo.toml")));
    }

    #[test]
    fn scope_excludes_shims_and_lint_itself() {
        assert!(!in_scope(&rel("shims/serde/src/lib.rs")));
        assert!(!in_scope(&rel("crates/lint/src/lib.rs")));
        assert!(in_scope(&rel("crates/wattch/src/energy.rs")));
        assert!(in_scope(&rel("src/lib.rs")));
        assert!(!in_scope(&rel("tests/properties.rs")));
        assert!(!in_scope(&rel("crates/core/tests/audit_properties.rs")));
    }
}
