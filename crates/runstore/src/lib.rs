//! Persistent content-addressed store of timing-run records.
//!
//! One warm store serves a fleet of cheap clients: separate figure jobs,
//! `studyd` restarts, and concurrent server processes all reuse each
//! other's simulation results instead of recomputing them. The store is
//! deliberately generic — it maps a *content address* (a stable 64-bit
//! key hash plus a simulator-config hash, with the full canonical key
//! bytes stored alongside for collision safety) to an opaque payload —
//! so this crate depends on nothing and the engine crate owns the codec.
//!
//! ## Durability model
//!
//! * **Append-only segments.** Records are only ever appended, each
//!   framed by a fixed header carrying its lengths and an FNV-1a
//!   checksum over the whole record. Nothing is rewritten in place, so a
//!   crash can only damage the *tail* of the segment being written.
//! * **Per-process segments.** Every opener appends to its own fresh
//!   segment file (named with the process id), never to a scanned one,
//!   so concurrent processes sharing a store directory cannot interleave
//!   writes inside one file.
//! * **Scan-rebuilt index.** [`RunStore::open`] scans every segment and
//!   rebuilds the in-memory index; a torn or corrupt record ends the
//!   scan of that segment (the tail is ignored, counted in
//!   [`StoreCounters::torn_records`]) without poisoning earlier records.
//! * **Read-back verification.** Every [`RunStore::recall`] re-reads the
//!   record from disk and verifies magic, version, lengths, checksum,
//!   and the full key bytes. Any mismatch is treated as a miss — the
//!   entry is dropped from the index and the caller recomputes — so a
//!   damaged record is *never* returned. (The `store-corruption-bug`
//!   feature seeds the obvious bug — skipping verification — for the CI
//!   negative smoke; the corruption tests must fail with it enabled.)
//! * **Write-behind fills.** [`RunStore::append`] enqueues the record
//!   and returns immediately; a dedicated flusher thread drains the
//!   queue to disk and publishes the index entry once the record is
//!   durable. [`RunStore::flush`] blocks until the queue is empty (call
//!   it before handing the directory to another process); dropping the
//!   store drains too.
//! * **Compaction and eviction.** Segments are append-only, so
//!   invalidated, codec-retired, and duplicate records accumulate as
//!   dead bytes until [`RunStore::compact`] rewrites the live set into
//!   one fresh segment and retires the old files. A [`StoreBudget`]
//!   (size and/or age cap) is enforced at flush and compaction time by
//!   deleting whole oldest-first segments; eviction is a cache policy
//!   and may drop live records, whereas compaction never does.
//! * **Fleet transfer.** [`RunStore::inventory`],
//!   [`RunStore::export_segment`], [`RunStore::export_record`], and
//!   [`RunStore::import_segment`] let a peer ship whole segments or
//!   single records as opaque byte blobs. Imports are verified
//!   record-by-record with the same checksums and land in a fresh
//!   per-process segment file, which the scan-on-open union already
//!   handles — the store never trusts a shipped byte it has not
//!   checksummed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::Duration;

// Under `model-check` the sync primitives and the flusher thread come
// from the interleave checker; they delegate to std outside a checker
// run, so the swap is behaviorally inert (the default build does not
// compile it at all).
#[cfg(feature = "model-check")]
use interleave::sync::{atomic::AtomicU64, Condvar, Mutex, MutexGuard};
#[cfg(feature = "model-check")]
use interleave::thread;
#[cfg(not(feature = "model-check"))]
use std::sync::{atomic::AtomicU64, Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "model-check"))]
use std::thread;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"RUNSEG01";

/// Magic opening every record header (`"RREC"` little-endian).
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"RREC");

/// On-disk format version; bump on any layout or codec change so stale
/// stores read as empty instead of as garbage.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed record-header size, bytes: magic, version, key hash, config
/// hash, key length, payload length, checksum.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 4 + 4 + 8;

/// Sanity bound on one canonical key, bytes. Anything larger is framing
/// damage, not a key.
pub const MAX_KEY_BYTES: u32 = 4 * 1024;

/// Sanity bound on one payload, bytes.
pub const MAX_PAYLOAD_BYTES: u32 = 16 * 1024 * 1024;

/// Rotate to a fresh segment once the current one exceeds this many
/// bytes, keeping open-time scans cheap per file.
pub const SEGMENT_ROTATE_BYTES: u64 = 8 * 1024 * 1024;

/// 64-bit FNV-1a over `bytes` — the store's stable hash. Unlike
/// `DefaultHasher`, its output is pinned by this crate, so hashes written
/// today are valid addresses tomorrow.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The content address of one record: a stable hash of the canonical key
/// bytes plus a hash of the simulator configuration that produced the
/// payload. Two records agree only if both hashes do — and the recall
/// path still compares the full key bytes, so even a double hash
/// collision cannot alias two different runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Stable hash of the canonical key bytes ([`fnv1a64`]).
    pub key_hash: u64,
    /// Hash of the simulator configuration (the caller's contract: any
    /// config change that alters simulation output changes this hash).
    pub config_hash: u64,
}

impl RecordId {
    /// The id addressing `key` under `config_hash`.
    pub fn of(key: &[u8], config_hash: u64) -> Self {
        RecordId {
            key_hash: fnv1a64(key),
            config_hash,
        }
    }
}

/// A point-in-time snapshot of store traffic. Counters are relaxed
/// atomics: approximate while appends are in flight, exact once the
/// store is quiescent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Recalls answered with a verified payload.
    pub hits: u64,
    /// Recalls that found no (valid) record.
    pub misses: u64,
    /// Recalls whose read-back verification failed (checksum, framing,
    /// or key mismatch) — each one was turned into a miss.
    pub verify_failures: u64,
    /// Records accepted for write-behind appending.
    pub appends: u64,
    /// Torn or corrupt tail records skipped while scanning on open.
    pub torn_records: u64,
    /// Records currently addressable through the index.
    pub records: u64,
    /// Segment files known (scanned plus created).
    pub segments: u64,
}

/// Size/age eviction policy, enforced at flush and compaction time.
/// `None` on both axes (the [`Default`]) means unbounded. Eviction
/// deletes whole oldest-first segments — live records in an evicted
/// segment are simply recomputed on the next miss, so the policy trades
/// disk for compute without ever risking a wrong answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreBudget {
    /// Cap on total segment bytes on disk; oldest segments are deleted
    /// until the store fits.
    pub max_bytes: Option<u64>,
    /// Cap on segment age (from the creation stamp in the file name);
    /// compaction rewrites live records into a fresh segment, which
    /// resets their age.
    pub max_age: Option<Duration>,
}

impl StoreBudget {
    /// Whether either axis is bounded.
    pub fn is_bounded(&self) -> bool {
        self.max_bytes.is_some() || self.max_age.is_some()
    }
}

/// One segment file's identity and weight, for compaction accounting
/// and the fleet inventory exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment's file name (never a path — names are validated
    /// before any disk access, so a peer cannot traverse directories).
    pub name: String,
    /// File size, bytes.
    pub bytes: u64,
    /// Records in the live index that point into this segment.
    pub records: u64,
}

/// What one [`RunStore::compact`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Live records rewritten into the fresh segment.
    pub live_records: u64,
    /// Total segment bytes on disk before the pass.
    pub bytes_before: u64,
    /// Total segment bytes on disk after the pass (and after budget
    /// enforcement).
    pub bytes_after: u64,
    /// Old segment files retired (deleted) by the pass.
    pub segments_retired: u64,
}

/// What one [`RunStore::import_segment`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Records that verified and were installed (durable and indexed).
    pub installed: u64,
    /// Records that verified but were already present locally.
    pub skipped: u64,
    /// Torn or corrupt records rejected (the scan stops at the first,
    /// exactly like the open-time segment scan).
    pub rejected: u64,
}

/// Where one record lives on disk.
#[derive(Debug, Clone)]
struct Loc {
    path: Arc<PathBuf>,
    offset: u64,
    len: u32,
}

/// One queued write-behind record.
struct PendingRecord {
    id: RecordId,
    key: Vec<u8>,
    payload: Vec<u8>,
}

struct State {
    index: HashMap<RecordId, Loc>,
    pending: VecDeque<PendingRecord>,
    /// True while the flusher is writing a popped record (the queue is
    /// empty but the record is not yet durable).
    writing: bool,
    closed: bool,
    /// Bumped whenever on-disk segments are retired (compaction or
    /// eviction); the flusher abandons its open segment on an epoch
    /// change so it never appends to a file scheduled for deletion.
    epoch: u64,
}

struct Shared {
    dir: PathBuf,
    budget: StoreBudget,
    state: Mutex<State>,
    cv: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    verify_failures: AtomicU64,
    appends: AtomicU64,
    torn_records: AtomicU64,
    segments: AtomicU64,
}

/// A poisoned store mutex means a peer thread panicked; the guarded
/// state (an index map and a queue) is never left torn, so keep going.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The persistent run store. See the crate docs for the format and the
/// durability model.
pub struct RunStore {
    shared: Arc<Shared>,
    flusher: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for RunStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunStore")
            .field("dir", &self.shared.dir)
            .field("records", &self.len())
            .finish()
    }
}

impl RunStore {
    /// Opens (creating if needed) the store rooted at `dir`: scans every
    /// segment, rebuilds the index, and starts the write-behind flusher.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] if the directory cannot be created or read.
    /// Individual damaged segments are not errors — their readable prefix
    /// is indexed and the torn tail is counted and skipped.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<RunStore> {
        RunStore::open_with_budget(dir, StoreBudget::default())
    }

    /// [`RunStore::open`] with a size/age eviction policy, enforced at
    /// flush and compaction time.
    ///
    /// # Errors
    ///
    /// Same as [`RunStore::open`].
    pub fn open_with_budget(dir: impl Into<PathBuf>, budget: StoreBudget) -> io::Result<RunStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();
        let mut torn = 0u64;
        let mut segments = 0u64;
        // Lexicographic order is creation order (zero-padded stamps),
        // so later segments override earlier ones in the index.
        for path in list_segments(&dir)? {
            segments += 1;
            torn += scan_segment(&path, &mut index)?;
        }
        let shared = Arc::new(Shared {
            dir,
            budget,
            state: Mutex::new(State {
                index,
                pending: VecDeque::new(),
                writing: false,
                closed: false,
                epoch: 0,
            }),
            cv: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            torn_records: AtomicU64::new(torn),
            segments: AtomicU64::new(segments),
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            // lint: allow(server-boundary): the store's one background
            // thread — the write-behind flusher that drains queued
            // appends to the process-private segment.
            thread::spawn(move || flusher_loop(&shared))
        };
        Ok(RunStore {
            shared,
            flusher: Some(flusher),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Number of records currently addressable through the index.
    pub fn len(&self) -> usize {
        lock(&self.shared.state).index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn counters(&self) -> StoreCounters {
        let records = self.len() as u64;
        let s = &self.shared;
        StoreCounters {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            verify_failures: s.verify_failures.load(Ordering::Relaxed),
            appends: s.appends.load(Ordering::Relaxed),
            torn_records: s.torn_records.load(Ordering::Relaxed),
            records,
            segments: s.segments.load(Ordering::Relaxed),
        }
    }

    /// Recalls the payload stored under `id`, read back from disk and
    /// verified (framing, checksum, and byte-for-byte key equality
    /// against `key`). Any damage or mismatch drops the index entry,
    /// counts a verify failure, and reads as a miss — the caller
    /// recomputes and re-appends; a damaged payload is never returned.
    pub fn recall(&self, id: RecordId, key: &[u8]) -> Option<Vec<u8>> {
        let loc = match lock(&self.shared.state).index.get(&id) {
            Some(loc) => loc.clone(),
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match read_verified(&loc, id, key) {
            Ok(payload) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(_) => {
                self.invalidate(id);
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Drops `id` from the index and counts a verify failure. Exposed so
    /// callers that decode payloads can treat a payload that fails *their*
    /// decoding as damaged too (the payload is opaque to the store).
    pub fn invalidate(&self, id: RecordId) {
        let removed = lock(&self.shared.state).index.remove(&id).is_some();
        if removed {
            self.shared.verify_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Queues one record for write-behind appending and returns
    /// immediately. The index entry is published once the record is on
    /// disk; until then a recall of `id` misses (callers keep fresh runs
    /// in their own memory tier, so this costs nothing in-process).
    /// Oversized keys or payloads are silently dropped — the store is a
    /// cache, and the caller's compute path remains correct without it.
    pub fn append(&self, id: RecordId, key: Vec<u8>, payload: Vec<u8>) {
        if key.len() > MAX_KEY_BYTES as usize || payload.len() > MAX_PAYLOAD_BYTES as usize {
            return;
        }
        let mut state = lock(&self.shared.state);
        if state.closed {
            return;
        }
        state.pending.push_back(PendingRecord { id, key, payload });
        self.shared.appends.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Blocks until every queued append is durable and indexed. Call
    /// before handing the directory to another process (or relying on a
    /// restart to see the records). Enforces the [`StoreBudget`], if one
    /// is set (eviction failures are swallowed — the store is a cache
    /// and flush has nothing useful to do with an I/O error).
    pub fn flush(&self) {
        let mut state = lock(&self.shared.state);
        while !state.pending.is_empty() || state.writing {
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        if self.shared.budget.is_bounded() {
            let _ = self.enforce_budget();
        }
    }

    /// The eviction policy this store was opened with.
    pub fn budget(&self) -> StoreBudget {
        self.shared.budget
    }

    /// Every id currently addressable through the index, in no
    /// particular order.
    pub fn record_ids(&self) -> Vec<RecordId> {
        lock(&self.shared.state).index.keys().copied().collect()
    }

    /// Drops every index entry whose `config_hash` matches — the bulk
    /// retirement path for a codec or simulator-config change. The
    /// records' bytes stay on disk (dead) until the next
    /// [`RunStore::compact`] reclaims them. Returns how many entries
    /// were retired; they are not counted as verify failures (nothing
    /// was damaged).
    pub fn retire_config(&self, config_hash: u64) -> u64 {
        let mut state = lock(&self.shared.state);
        let before = state.index.len();
        state.index.retain(|id, _| id.config_hash != config_hash);
        (before - state.index.len()) as u64
    }

    /// Total bytes of segment files on disk.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] if the store directory cannot be listed.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        Ok(list_segments(&self.shared.dir)?
            .iter()
            .map(|p| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum())
    }

    /// The store's segment inventory: every segment file on disk, in
    /// creation order, with its size and live-record count. This is the
    /// unit of the fleet's anti-entropy exchange — a peer compares
    /// inventories and pulls whole segments it is missing.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] if the store directory cannot be listed.
    pub fn inventory(&self) -> io::Result<Vec<SegmentInfo>> {
        let paths = list_segments(&self.shared.dir)?;
        let sizes: Vec<u64> = paths
            .iter()
            .map(|p| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .collect();
        let state = lock(&self.shared.state);
        let mut live: HashMap<&Path, u64> = HashMap::new();
        for loc in state.index.values() {
            *live.entry(loc.path.as_path()).or_insert(0) += 1;
        }
        Ok(paths
            .iter()
            .zip(sizes)
            .map(|(path, bytes)| SegmentInfo {
                name: segment_file_name(path),
                bytes,
                records: live.get(path.as_path()).copied().unwrap_or(0),
            })
            .collect())
    }

    /// Reads one whole segment file as raw bytes for shipping to a
    /// peer. The name must be a bare segment file name (as reported by
    /// [`RunStore::inventory`]); anything else — separators, traversal,
    /// a non-segment name — is refused before any disk access.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] for an invalid name or an unreadable file
    /// (e.g. the segment was compacted away between inventory and pull).
    pub fn export_segment(&self, name: &str) -> io::Result<Vec<u8>> {
        if !valid_segment_name(name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "not a segment file name",
            ));
        }
        fs::read(self.shared.dir.join(name))
    }

    /// Reads the raw encoded bytes (header, key, payload) of the record
    /// stored under `id`, for serving a fleet recall. The bytes are
    /// shipped as-is — the *requesting* side runs the checksum and key
    /// verification, so a locally damaged record is rejected remotely
    /// exactly as it would be locally. Returns `None` on a miss or any
    /// read failure.
    pub fn export_record(&self, id: RecordId) -> Option<Vec<u8>> {
        let loc = lock(&self.shared.state).index.get(&id)?.clone();
        read_record_bytes(&loc).ok()
    }

    /// Installs records shipped from a peer's segment (the bytes of one
    /// whole segment file, as produced by [`RunStore::export_segment`]).
    /// Every record is parsed and checksum-verified; verified records
    /// not already present land in a fresh per-process segment file
    /// (durable and indexed before this returns), so a shipped segment
    /// is never trusted byte-for-byte and never appended to an existing
    /// file. A torn or corrupt record ends the scan — the intact prefix
    /// is still installed, mirroring the open-time scan.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] only for local write failures; damage in
    /// the *shipped* bytes is reported via [`ImportReport::rejected`].
    pub fn import_segment(&self, bytes: &[u8]) -> io::Result<ImportReport> {
        let mut report = ImportReport::default();
        let mut verified: Vec<ParsedRecord> = Vec::new();
        if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            report.rejected = 1;
            return Ok(report);
        }
        let mut offset = SEGMENT_MAGIC.len();
        while offset < bytes.len() {
            match parse_record(bytes, offset) {
                Ok(record) => {
                    offset += record.len;
                    verified.push(record);
                }
                Err(_) => {
                    report.rejected = 1;
                    break;
                }
            }
        }
        let missing: Vec<&ParsedRecord> = {
            let state = lock(&self.shared.state);
            verified
                .iter()
                .filter(|r| !state.index.contains_key(&r.id))
                .collect()
        };
        report.skipped = (verified.len() - missing.len()) as u64;
        if missing.is_empty() {
            return Ok(report);
        }
        // Write the foreign records into a fresh segment of our own,
        // re-encoded (byte-identical — the checksum pins the content).
        let mut seg = create_segment(&self.shared)?;
        self.shared.segments.fetch_add(1, Ordering::Relaxed);
        let mut locs: Vec<(RecordId, Loc)> = Vec::with_capacity(missing.len());
        for record in &missing {
            let encoded = encode_record(record.id, &record.key, &record.payload);
            let offset = seg.len;
            seg.file.write_all(&encoded)?;
            seg.len += encoded.len() as u64;
            locs.push((
                record.id,
                Loc {
                    path: Arc::clone(&seg.path),
                    offset,
                    len: encoded.len() as u32,
                },
            ));
        }
        seg.file.flush()?;
        let mut state = lock(&self.shared.state);
        for (id, loc) in locs {
            // First-writer-wins if a concurrent append published the
            // same id meanwhile; both copies hold identical payloads.
            if let std::collections::hash_map::Entry::Vacant(slot) = state.index.entry(id) {
                slot.insert(loc);
                report.installed += 1;
            } else {
                report.skipped += 1;
            }
        }
        Ok(report)
    }

    /// Rewrites every live record into one fresh segment, then retires
    /// (deletes) all prior segment files — reclaiming the dead bytes of
    /// invalidated, codec-retired, and duplicate records. Each record is
    /// checksum-verified during the rewrite; a record that fails was
    /// damaged on disk and is dropped exactly as a recall would have
    /// dropped it. Concurrent appends are safe: the flusher rotates to a
    /// new segment (never a retired one) on the epoch bump, and entries
    /// that changed mid-pass keep their newer location. Other *processes*
    /// sharing the directory may see their scanned segments deleted;
    /// their recalls then fail verification and fall back to compute — a
    /// miss, never a wrong answer. Ends by enforcing the [`StoreBudget`].
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] if the directory cannot be listed or the
    /// fresh segment cannot be written; the old segments are only
    /// deleted after the rewrite is durable, so a failed pass leaves
    /// every live record readable.
    pub fn compact(&self) -> io::Result<CompactReport> {
        self.flush();
        // Quiesce, snapshot, and bump the epoch under one lock hold: the
        // queue is empty and nothing is mid-write, so after the bump no
        // file listed here can receive another record from our flusher.
        let (snapshot, retire) = {
            let mut state = lock(&self.shared.state);
            while !state.pending.is_empty() || state.writing {
                state = self
                    .shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.epoch += 1;
            let retire = list_segments(&self.shared.dir)?;
            let mut snapshot: Vec<(RecordId, Loc)> = state
                .index
                .iter()
                .map(|(id, loc)| (*id, loc.clone()))
                .collect();
            // Deterministic rewrite order (the index iterates in hash
            // order, which varies run to run).
            snapshot.sort_by_key(|(id, _)| (id.key_hash, id.config_hash));
            (snapshot, retire)
        };
        let bytes_before: u64 = retire
            .iter()
            .map(|p| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        let live_bytes: u64 = snapshot.iter().map(|(_, loc)| u64::from(loc.len)).sum();
        // Already compact: at most one segment and every byte of it live.
        if retire.len() <= 1
            && live_bytes + (SEGMENT_MAGIC.len() * retire.len()) as u64 == bytes_before
        {
            self.enforce_budget()?;
            return Ok(CompactReport {
                live_records: snapshot.len() as u64,
                bytes_before,
                bytes_after: self.disk_bytes()?,
                segments_retired: 0,
            });
        }
        // Rewrite the verified live set into one fresh segment.
        let mut seg: Option<OpenSegment> = None;
        let mut moved: Vec<(RecordId, Loc)> = Vec::with_capacity(snapshot.len());
        for (id, loc) in &snapshot {
            let Ok(raw) = read_record_bytes(loc) else {
                continue;
            };
            let Ok(record) = parse_record(&raw, 0) else {
                continue;
            };
            if record.id != *id {
                continue;
            }
            if seg.is_none() {
                seg = Some(create_segment(&self.shared)?);
                self.shared.segments.fetch_add(1, Ordering::Relaxed);
            }
            let Some(open) = seg.as_mut() else {
                continue;
            };
            let offset = open.len;
            open.file.write_all(&raw)?;
            open.len += raw.len() as u64;
            moved.push((
                *id,
                Loc {
                    path: Arc::clone(&open.path),
                    offset,
                    len: raw.len() as u32,
                },
            ));
        }
        if let Some(open) = seg.as_mut() {
            open.file.flush()?;
        }
        let live_records = moved.len() as u64;
        // Publish the new locations, then drop anything still pointing
        // into a retired file (records that failed verification above).
        let retired: std::collections::HashSet<&Path> =
            retire.iter().map(PathBuf::as_path).collect();
        {
            let mut state = lock(&self.shared.state);
            for (id, newloc) in moved {
                if state
                    .index
                    .get(&id)
                    .is_some_and(|cur| retired.contains(cur.path.as_path()))
                {
                    state.index.insert(id, newloc);
                }
            }
            let before = state.index.len();
            state
                .index
                .retain(|_, loc| !retired.contains(loc.path.as_path()));
            let dropped = (before - state.index.len()) as u64;
            if dropped > 0 {
                self.shared
                    .verify_failures
                    .fetch_add(dropped, Ordering::Relaxed);
            }
        }
        for path in &retire {
            let _ = fs::remove_file(path);
        }
        self.shared.segments.store(
            list_segments(&self.shared.dir)?.len() as u64,
            Ordering::Relaxed,
        );
        self.enforce_budget()?;
        Ok(CompactReport {
            live_records,
            bytes_before,
            bytes_after: self.disk_bytes()?,
            segments_retired: retire.len() as u64,
        })
    }

    /// Enforces the [`StoreBudget`] by deleting whole segments, oldest
    /// first (by the creation stamp in the file name): first everything
    /// older than `max_age`, then oldest-first until the store fits in
    /// `max_bytes`. Index entries into deleted segments are dropped —
    /// their records are recomputed on the next miss. Returns how many
    /// segments were evicted. No-op for an unbounded budget.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] if the store directory cannot be listed.
    pub fn enforce_budget(&self) -> io::Result<u64> {
        let budget = self.shared.budget;
        if !budget.is_bounded() {
            return Ok(0);
        }
        let paths = list_segments(&self.shared.dir)?;
        let metas: Vec<(PathBuf, u64, u64)> = paths
            .into_iter()
            .map(|p| {
                let bytes = fs::metadata(&p).map(|m| m.len()).unwrap_or(0);
                let stamp = segment_name_stamp(&p);
                (p, bytes, stamp)
            })
            .collect();
        let mut drop_flags = vec![false; metas.len()];
        if let Some(max_age) = budget.max_age {
            let cutoff =
                segment_stamp(0).saturating_sub(u64::try_from(max_age.as_micros()).unwrap_or(0));
            for (flag, (_, _, stamp)) in drop_flags.iter_mut().zip(&metas) {
                if *stamp < cutoff {
                    *flag = true;
                }
            }
        }
        if let Some(max_bytes) = budget.max_bytes {
            let mut total: u64 = metas
                .iter()
                .zip(&drop_flags)
                .filter(|(_, dropped)| !**dropped)
                .map(|((_, bytes, _), _)| *bytes)
                .sum();
            // `list_segments` sorts lexicographically = stamp order, so
            // this walks oldest to newest.
            for (flag, (_, bytes, _)) in drop_flags.iter_mut().zip(&metas) {
                if total <= max_bytes {
                    break;
                }
                if !*flag {
                    *flag = true;
                    total -= *bytes;
                }
            }
        }
        let evict: Vec<&PathBuf> = metas
            .iter()
            .zip(&drop_flags)
            .filter(|(_, dropped)| **dropped)
            .map(|((path, _, _), _)| path)
            .collect();
        if evict.is_empty() {
            return Ok(0);
        }
        let evicted: std::collections::HashSet<&Path> = evict.iter().map(|p| p.as_path()).collect();
        {
            let mut state = lock(&self.shared.state);
            // The flusher's open segment may be on the evict list; the
            // bump makes it rotate instead of appending to a dead file.
            state.epoch += 1;
            state
                .index
                .retain(|_, loc| !evicted.contains(loc.path.as_path()));
        }
        for path in &evict {
            let _ = fs::remove_file(path);
        }
        self.shared.segments.store(
            list_segments(&self.shared.dir)?.len() as u64,
            Ordering::Relaxed,
        );
        Ok(evict.len() as u64)
    }
}

impl Drop for RunStore {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.closed = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

/// The flusher: drains the pending queue to per-process segment files,
/// publishing each index entry after its record is written. Exits once
/// the store is closed *and* the queue is drained, so dropping the store
/// never loses accepted records.
fn flusher_loop(shared: &Shared) {
    let mut segment: Option<OpenSegment> = None;
    let mut segment_epoch = 0u64;
    loop {
        let (record, epoch) = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(record) = state.pending.pop_front() {
                    state.writing = true;
                    break (record, state.epoch);
                }
                if state.closed {
                    return;
                }
                state = shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if segment_epoch != epoch {
            // Compaction or eviction retired on-disk segments — possibly
            // ours. Rotate rather than append to a deleted file.
            segment = None;
            segment_epoch = epoch;
        }
        let written = write_record(shared, &mut segment, &record);
        let mut state = lock(&shared.state);
        state.writing = false;
        if let Some(loc) = written {
            state.index.insert(record.id, loc);
        }
        drop(state);
        shared.cv.notify_all();
    }
}

struct OpenSegment {
    file: fs::File,
    path: Arc<PathBuf>,
    len: u64,
}

/// Writes one record, rotating or creating the process-private segment
/// as needed. Returns the record's location, or `None` if the filesystem
/// refused (the store is a cache; a failed spill is not fatal).
fn write_record(
    shared: &Shared,
    segment: &mut Option<OpenSegment>,
    record: &PendingRecord,
) -> Option<Loc> {
    if segment
        .as_ref()
        .is_some_and(|s| s.len >= SEGMENT_ROTATE_BYTES)
    {
        *segment = None;
    }
    if segment.is_none() {
        *segment = create_segment(shared).ok();
        if segment.is_some() {
            shared.segments.fetch_add(1, Ordering::Relaxed);
        }
    }
    let seg = segment.as_mut()?;
    let bytes = encode_record(record.id, &record.key, &record.payload);
    let offset = seg.len;
    if seg
        .file
        .write_all(&bytes)
        .and_then(|()| seg.file.flush())
        .is_err()
    {
        // The segment is now suspect; drop it so the next write starts
        // fresh rather than appending after a partial record.
        *segment = None;
        return None;
    }
    seg.len += bytes.len() as u64;
    Some(Loc {
        path: Arc::clone(&seg.path),
        offset,
        len: bytes.len() as u32,
    })
}

/// Creates a fresh process-private segment file (never appends to a
/// scanned one, so concurrent store processes cannot interleave).
fn create_segment(shared: &Shared) -> io::Result<OpenSegment> {
    let pid = std::process::id();
    for attempt in 0u32.. {
        let name = format!("seg-{:016x}-{pid:08x}.runs", segment_stamp(attempt));
        let path = shared.dir.join(name);
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                file.write_all(SEGMENT_MAGIC)?;
                file.flush()?;
                return Ok(OpenSegment {
                    file,
                    path: Arc::new(path),
                    len: SEGMENT_MAGIC.len() as u64,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists && attempt < 1024 => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!("the retry loop above always returns")
}

/// Monotonic-enough segment stamp: wall-clock microseconds since the
/// epoch, perturbed by the attempt counter on name collisions. Ordering
/// only affects which duplicate record wins the index scan, never
/// correctness (duplicates of one key hold identical payloads).
fn segment_stamp(attempt: u32) -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
        .wrapping_add(u64::from(attempt))
}

/// Every segment file under `dir`, sorted lexicographically — which is
/// creation-stamp order, the order the open-time scan and the eviction
/// policy both rely on.
fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "runs")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
        })
        .collect();
    names.sort();
    Ok(names)
}

/// Whether `name` is a bare segment file name (`seg-<16 hex>-<8
/// hex>.runs`) — the gate on peer-supplied names before any disk
/// access, so a name can never escape the store directory.
pub fn valid_segment_name(name: &str) -> bool {
    let Some(hex) = name
        .strip_prefix("seg-")
        .and_then(|rest| rest.strip_suffix(".runs"))
    else {
        return false;
    };
    let mut parts = hex.splitn(2, '-');
    let stamp = parts.next().unwrap_or("");
    let pid = parts.next().unwrap_or("");
    stamp.len() == 16
        && pid.len() == 8
        && stamp.chars().all(|c| c.is_ascii_hexdigit())
        && pid.chars().all(|c| c.is_ascii_hexdigit())
}

/// The bare file name of a segment path.
fn segment_file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// The creation stamp (epoch microseconds) encoded in a segment file
/// name; 0 for anything unparsable (which then reads as "oldest").
fn segment_name_stamp(path: &Path) -> u64 {
    let name = segment_file_name(path);
    name.strip_prefix("seg-")
        .and_then(|rest| rest.get(..16))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .unwrap_or(0)
}

/// Reads the raw bytes of one located record.
fn read_record_bytes(loc: &Loc) -> Result<Vec<u8>, &'static str> {
    let mut file = fs::File::open(loc.path.as_path()).map_err(|_| "segment unreadable")?;
    file.seek(SeekFrom::Start(loc.offset))
        .map_err(|_| "seek failed")?;
    let mut buf = vec![0u8; loc.len as usize];
    file.read_exact(&mut buf).map_err(|_| "short read")?;
    Ok(buf)
}

/// Serializes one record: fixed header, key bytes, payload bytes.
pub fn encode_record(id: RecordId, key: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + key.len() + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&id.key_hash.to_le_bytes());
    out.extend_from_slice(&id.config_hash.to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_checksum(id, key, payload).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(payload);
    out
}

/// The checksum stored in (and verified against) a record header:
/// FNV-1a over the id, the lengths, and both variable sections.
pub fn record_checksum(id: RecordId, key: &[u8], payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(24 + key.len() + payload.len());
    buf.extend_from_slice(&id.key_hash.to_le_bytes());
    buf.extend_from_slice(&id.config_hash.to_le_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(payload);
    fnv1a64(&buf)
}

/// A record parsed (and checksum-verified) out of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    /// The record's content address.
    pub id: RecordId,
    /// The canonical key bytes.
    pub key: Vec<u8>,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Total encoded length, bytes.
    pub len: usize,
}

/// Parses the record starting at `buf[offset..]`, verifying framing and
/// checksum.
///
/// # Errors
///
/// Returns a static description of the first problem (truncation, bad
/// magic or version, insane lengths, checksum mismatch) — the scan and
/// recall paths treat them all identically, as "not a valid record".
pub fn parse_record(buf: &[u8], offset: usize) -> Result<ParsedRecord, &'static str> {
    let rec = buf.get(offset..).ok_or("offset past end")?;
    if rec.len() < RECORD_HEADER_BYTES {
        return Err("truncated header");
    }
    let u32_at = |at: usize| u32::from_le_bytes(rec[at..at + 4].try_into().unwrap_or([0; 4]));
    let u64_at = |at: usize| u64::from_le_bytes(rec[at..at + 8].try_into().unwrap_or([0; 8]));
    if u32_at(0) != RECORD_MAGIC {
        return Err("bad record magic");
    }
    if u32_at(4) != FORMAT_VERSION {
        return Err("unknown format version");
    }
    let id = RecordId {
        key_hash: u64_at(8),
        config_hash: u64_at(16),
    };
    let key_len = u32_at(24);
    let payload_len = u32_at(28);
    if key_len > MAX_KEY_BYTES || payload_len > MAX_PAYLOAD_BYTES {
        return Err("insane record lengths");
    }
    let checksum = u64_at(32);
    let total = RECORD_HEADER_BYTES + key_len as usize + payload_len as usize;
    if rec.len() < total {
        return Err("truncated record body");
    }
    let key = &rec[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + key_len as usize];
    let payload = &rec[RECORD_HEADER_BYTES + key_len as usize..total];
    if record_checksum(id, key, payload) != checksum {
        return Err("checksum mismatch");
    }
    Ok(ParsedRecord {
        id,
        key: key.to_vec(),
        payload: payload.to_vec(),
        len: total,
    })
}

/// Scans one segment into `index`; returns how many torn/corrupt tail
/// records were skipped (0 or 1 — the scan stops at the first).
fn scan_segment(path: &Path, index: &mut HashMap<RecordId, Loc>) -> io::Result<u64> {
    let buf = fs::read(path)?;
    if buf.len() < SEGMENT_MAGIC.len() || &buf[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // Not (yet) a segment of ours: an empty or foreign file. Skip it
        // entirely but count it if it has content claiming otherwise.
        return Ok(u64::from(!buf.is_empty()));
    }
    let shared_path = Arc::new(path.to_path_buf());
    let mut offset = SEGMENT_MAGIC.len();
    let mut torn = 0u64;
    while offset < buf.len() {
        match parse_record(&buf, offset) {
            Ok(record) => {
                index.insert(
                    record.id,
                    Loc {
                        path: Arc::clone(&shared_path),
                        offset: offset as u64,
                        len: record.len as u32,
                    },
                );
                offset += record.len;
            }
            Err(_) => {
                // A torn tail (crash mid-append) or bit rot: everything
                // before this offset is intact and indexed; ignore the
                // rest of the file.
                torn = 1;
                break;
            }
        }
    }
    Ok(torn)
}

/// Re-reads `loc` from disk and verifies it end to end against the
/// expected id and key bytes.
///
/// # Errors
///
/// Any I/O failure, framing damage, checksum mismatch, or id/key
/// disagreement — the caller treats every case as a miss.
fn read_verified(loc: &Loc, id: RecordId, key: &[u8]) -> Result<Vec<u8>, &'static str> {
    let buf = read_record_bytes(loc)?;
    #[cfg(feature = "store-corruption-bug")]
    {
        // Seeded bug for the CI negative smoke: trust the index blindly
        // and slice the payload out without verifying anything. The
        // corruption tests must turn this into a failure.
        if buf.len() >= RECORD_HEADER_BYTES {
            let key_len = u32::from_le_bytes(buf[24..28].try_into().unwrap_or([0; 4])) as usize;
            let start = RECORD_HEADER_BYTES + key_len;
            if start <= buf.len() {
                return Ok(buf[start..].to_vec());
            }
        }
        return Err("truncated record body");
    }
    #[cfg(not(feature = "store-corruption-bug"))]
    {
        let record = parse_record(&buf, 0)?;
        if record.id != id {
            return Err("record id mismatch");
        }
        if record.key != key {
            return Err("key bytes mismatch (hash collision or damage)");
        }
        Ok(record.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn record_round_trips_through_encode_parse() {
        let id = RecordId::of(b"key-bytes", 7);
        let bytes = encode_record(id, b"key-bytes", b"payload!");
        let parsed = parse_record(&bytes, 0).expect("parses");
        assert_eq!(parsed.id, id);
        assert_eq!(parsed.key, b"key-bytes");
        assert_eq!(parsed.payload, b"payload!");
        assert_eq!(parsed.len, bytes.len());
    }

    #[test]
    fn parse_rejects_truncation_and_damage() {
        let id = RecordId::of(b"k", 1);
        let bytes = encode_record(id, b"k", b"0123456789");
        for cut in [0, 10, RECORD_HEADER_BYTES, bytes.len() - 1] {
            assert!(parse_record(&bytes[..cut], 0).is_err(), "cut={cut}");
        }
        for flip in [0, 9, 33, RECORD_HEADER_BYTES, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            assert!(parse_record(&bad, 0).is_err(), "flip={flip}");
        }
    }
}
