//! Persistent content-addressed store of timing-run records.
//!
//! One warm store serves a fleet of cheap clients: separate figure jobs,
//! `studyd` restarts, and concurrent server processes all reuse each
//! other's simulation results instead of recomputing them. The store is
//! deliberately generic — it maps a *content address* (a stable 64-bit
//! key hash plus a simulator-config hash, with the full canonical key
//! bytes stored alongside for collision safety) to an opaque payload —
//! so this crate depends on nothing and the engine crate owns the codec.
//!
//! ## Durability model
//!
//! * **Append-only segments.** Records are only ever appended, each
//!   framed by a fixed header carrying its lengths and an FNV-1a
//!   checksum over the whole record. Nothing is rewritten in place, so a
//!   crash can only damage the *tail* of the segment being written.
//! * **Per-process segments.** Every opener appends to its own fresh
//!   segment file (named with the process id), never to a scanned one,
//!   so concurrent processes sharing a store directory cannot interleave
//!   writes inside one file.
//! * **Scan-rebuilt index.** [`RunStore::open`] scans every segment and
//!   rebuilds the in-memory index; a torn or corrupt record ends the
//!   scan of that segment (the tail is ignored, counted in
//!   [`StoreCounters::torn_records`]) without poisoning earlier records.
//! * **Read-back verification.** Every [`RunStore::recall`] re-reads the
//!   record from disk and verifies magic, version, lengths, checksum,
//!   and the full key bytes. Any mismatch is treated as a miss — the
//!   entry is dropped from the index and the caller recomputes — so a
//!   damaged record is *never* returned. (The `store-corruption-bug`
//!   feature seeds the obvious bug — skipping verification — for the CI
//!   negative smoke; the corruption tests must fail with it enabled.)
//! * **Write-behind fills.** [`RunStore::append`] enqueues the record
//!   and returns immediately; a dedicated flusher thread drains the
//!   queue to disk and publishes the index entry once the record is
//!   durable. [`RunStore::flush`] blocks until the queue is empty (call
//!   it before handing the directory to another process); dropping the
//!   store drains too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

// Under `model-check` the sync primitives and the flusher thread come
// from the interleave checker; they delegate to std outside a checker
// run, so the swap is behaviorally inert (the default build does not
// compile it at all).
#[cfg(feature = "model-check")]
use interleave::sync::{atomic::AtomicU64, Condvar, Mutex, MutexGuard};
#[cfg(feature = "model-check")]
use interleave::thread;
#[cfg(not(feature = "model-check"))]
use std::sync::{atomic::AtomicU64, Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "model-check"))]
use std::thread;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"RUNSEG01";

/// Magic opening every record header (`"RREC"` little-endian).
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"RREC");

/// On-disk format version; bump on any layout or codec change so stale
/// stores read as empty instead of as garbage.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed record-header size, bytes: magic, version, key hash, config
/// hash, key length, payload length, checksum.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 4 + 4 + 8;

/// Sanity bound on one canonical key, bytes. Anything larger is framing
/// damage, not a key.
pub const MAX_KEY_BYTES: u32 = 4 * 1024;

/// Sanity bound on one payload, bytes.
pub const MAX_PAYLOAD_BYTES: u32 = 16 * 1024 * 1024;

/// Rotate to a fresh segment once the current one exceeds this many
/// bytes, keeping open-time scans cheap per file.
pub const SEGMENT_ROTATE_BYTES: u64 = 8 * 1024 * 1024;

/// 64-bit FNV-1a over `bytes` — the store's stable hash. Unlike
/// `DefaultHasher`, its output is pinned by this crate, so hashes written
/// today are valid addresses tomorrow.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The content address of one record: a stable hash of the canonical key
/// bytes plus a hash of the simulator configuration that produced the
/// payload. Two records agree only if both hashes do — and the recall
/// path still compares the full key bytes, so even a double hash
/// collision cannot alias two different runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Stable hash of the canonical key bytes ([`fnv1a64`]).
    pub key_hash: u64,
    /// Hash of the simulator configuration (the caller's contract: any
    /// config change that alters simulation output changes this hash).
    pub config_hash: u64,
}

impl RecordId {
    /// The id addressing `key` under `config_hash`.
    pub fn of(key: &[u8], config_hash: u64) -> Self {
        RecordId {
            key_hash: fnv1a64(key),
            config_hash,
        }
    }
}

/// A point-in-time snapshot of store traffic. Counters are relaxed
/// atomics: approximate while appends are in flight, exact once the
/// store is quiescent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Recalls answered with a verified payload.
    pub hits: u64,
    /// Recalls that found no (valid) record.
    pub misses: u64,
    /// Recalls whose read-back verification failed (checksum, framing,
    /// or key mismatch) — each one was turned into a miss.
    pub verify_failures: u64,
    /// Records accepted for write-behind appending.
    pub appends: u64,
    /// Torn or corrupt tail records skipped while scanning on open.
    pub torn_records: u64,
    /// Records currently addressable through the index.
    pub records: u64,
    /// Segment files known (scanned plus created).
    pub segments: u64,
}

/// Where one record lives on disk.
#[derive(Debug, Clone)]
struct Loc {
    path: Arc<PathBuf>,
    offset: u64,
    len: u32,
}

/// One queued write-behind record.
struct PendingRecord {
    id: RecordId,
    key: Vec<u8>,
    payload: Vec<u8>,
}

struct State {
    index: HashMap<RecordId, Loc>,
    pending: VecDeque<PendingRecord>,
    /// True while the flusher is writing a popped record (the queue is
    /// empty but the record is not yet durable).
    writing: bool,
    closed: bool,
}

struct Shared {
    dir: PathBuf,
    state: Mutex<State>,
    cv: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    verify_failures: AtomicU64,
    appends: AtomicU64,
    torn_records: AtomicU64,
    segments: AtomicU64,
}

/// A poisoned store mutex means a peer thread panicked; the guarded
/// state (an index map and a queue) is never left torn, so keep going.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The persistent run store. See the crate docs for the format and the
/// durability model.
pub struct RunStore {
    shared: Arc<Shared>,
    flusher: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for RunStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunStore")
            .field("dir", &self.shared.dir)
            .field("records", &self.len())
            .finish()
    }
}

impl RunStore {
    /// Opens (creating if needed) the store rooted at `dir`: scans every
    /// segment, rebuilds the index, and starts the write-behind flusher.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] if the directory cannot be created or read.
    /// Individual damaged segments are not errors — their readable prefix
    /// is indexed and the torn tail is counted and skipped.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<RunStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();
        let mut torn = 0u64;
        let mut segments = 0u64;
        let mut names: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "runs")
                    && p.file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
            })
            .collect();
        // Lexicographic order is creation order (zero-padded counters),
        // so later segments override earlier ones in the index.
        names.sort();
        for path in names {
            segments += 1;
            torn += scan_segment(&path, &mut index)?;
        }
        let shared = Arc::new(Shared {
            dir,
            state: Mutex::new(State {
                index,
                pending: VecDeque::new(),
                writing: false,
                closed: false,
            }),
            cv: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            torn_records: AtomicU64::new(torn),
            segments: AtomicU64::new(segments),
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            // lint: allow(server-boundary): the store's one background
            // thread — the write-behind flusher that drains queued
            // appends to the process-private segment.
            thread::spawn(move || flusher_loop(&shared))
        };
        Ok(RunStore {
            shared,
            flusher: Some(flusher),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Number of records currently addressable through the index.
    pub fn len(&self) -> usize {
        lock(&self.shared.state).index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn counters(&self) -> StoreCounters {
        let records = self.len() as u64;
        let s = &self.shared;
        StoreCounters {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            verify_failures: s.verify_failures.load(Ordering::Relaxed),
            appends: s.appends.load(Ordering::Relaxed),
            torn_records: s.torn_records.load(Ordering::Relaxed),
            records,
            segments: s.segments.load(Ordering::Relaxed),
        }
    }

    /// Recalls the payload stored under `id`, read back from disk and
    /// verified (framing, checksum, and byte-for-byte key equality
    /// against `key`). Any damage or mismatch drops the index entry,
    /// counts a verify failure, and reads as a miss — the caller
    /// recomputes and re-appends; a damaged payload is never returned.
    pub fn recall(&self, id: RecordId, key: &[u8]) -> Option<Vec<u8>> {
        let loc = match lock(&self.shared.state).index.get(&id) {
            Some(loc) => loc.clone(),
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match read_verified(&loc, id, key) {
            Ok(payload) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(_) => {
                self.invalidate(id);
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Drops `id` from the index and counts a verify failure. Exposed so
    /// callers that decode payloads can treat a payload that fails *their*
    /// decoding as damaged too (the payload is opaque to the store).
    pub fn invalidate(&self, id: RecordId) {
        let removed = lock(&self.shared.state).index.remove(&id).is_some();
        if removed {
            self.shared.verify_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Queues one record for write-behind appending and returns
    /// immediately. The index entry is published once the record is on
    /// disk; until then a recall of `id` misses (callers keep fresh runs
    /// in their own memory tier, so this costs nothing in-process).
    /// Oversized keys or payloads are silently dropped — the store is a
    /// cache, and the caller's compute path remains correct without it.
    pub fn append(&self, id: RecordId, key: Vec<u8>, payload: Vec<u8>) {
        if key.len() > MAX_KEY_BYTES as usize || payload.len() > MAX_PAYLOAD_BYTES as usize {
            return;
        }
        let mut state = lock(&self.shared.state);
        if state.closed {
            return;
        }
        state.pending.push_back(PendingRecord { id, key, payload });
        self.shared.appends.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Blocks until every queued append is durable and indexed. Call
    /// before handing the directory to another process (or relying on a
    /// restart to see the records).
    pub fn flush(&self) {
        let mut state = lock(&self.shared.state);
        while !state.pending.is_empty() || state.writing {
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for RunStore {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.closed = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

/// The flusher: drains the pending queue to per-process segment files,
/// publishing each index entry after its record is written. Exits once
/// the store is closed *and* the queue is drained, so dropping the store
/// never loses accepted records.
fn flusher_loop(shared: &Shared) {
    let mut segment: Option<OpenSegment> = None;
    loop {
        let record = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(record) = state.pending.pop_front() {
                    state.writing = true;
                    break record;
                }
                if state.closed {
                    return;
                }
                state = shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let written = write_record(shared, &mut segment, &record);
        let mut state = lock(&shared.state);
        state.writing = false;
        if let Some(loc) = written {
            state.index.insert(record.id, loc);
        }
        drop(state);
        shared.cv.notify_all();
    }
}

struct OpenSegment {
    file: fs::File,
    path: Arc<PathBuf>,
    len: u64,
}

/// Writes one record, rotating or creating the process-private segment
/// as needed. Returns the record's location, or `None` if the filesystem
/// refused (the store is a cache; a failed spill is not fatal).
fn write_record(
    shared: &Shared,
    segment: &mut Option<OpenSegment>,
    record: &PendingRecord,
) -> Option<Loc> {
    if segment
        .as_ref()
        .is_some_and(|s| s.len >= SEGMENT_ROTATE_BYTES)
    {
        *segment = None;
    }
    if segment.is_none() {
        *segment = create_segment(shared).ok();
        if segment.is_some() {
            shared.segments.fetch_add(1, Ordering::Relaxed);
        }
    }
    let seg = segment.as_mut()?;
    let bytes = encode_record(record.id, &record.key, &record.payload);
    let offset = seg.len;
    if seg
        .file
        .write_all(&bytes)
        .and_then(|()| seg.file.flush())
        .is_err()
    {
        // The segment is now suspect; drop it so the next write starts
        // fresh rather than appending after a partial record.
        *segment = None;
        return None;
    }
    seg.len += bytes.len() as u64;
    Some(Loc {
        path: Arc::clone(&seg.path),
        offset,
        len: bytes.len() as u32,
    })
}

/// Creates a fresh process-private segment file (never appends to a
/// scanned one, so concurrent store processes cannot interleave).
fn create_segment(shared: &Shared) -> io::Result<OpenSegment> {
    let pid = std::process::id();
    for attempt in 0u32.. {
        let name = format!("seg-{:016x}-{pid:08x}.runs", segment_stamp(attempt));
        let path = shared.dir.join(name);
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                file.write_all(SEGMENT_MAGIC)?;
                file.flush()?;
                return Ok(OpenSegment {
                    file,
                    path: Arc::new(path),
                    len: SEGMENT_MAGIC.len() as u64,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists && attempt < 1024 => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!("the retry loop above always returns")
}

/// Monotonic-enough segment stamp: wall-clock microseconds since the
/// epoch, perturbed by the attempt counter on name collisions. Ordering
/// only affects which duplicate record wins the index scan, never
/// correctness (duplicates of one key hold identical payloads).
fn segment_stamp(attempt: u32) -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
        .wrapping_add(u64::from(attempt))
}

/// Serializes one record: fixed header, key bytes, payload bytes.
pub fn encode_record(id: RecordId, key: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + key.len() + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&id.key_hash.to_le_bytes());
    out.extend_from_slice(&id.config_hash.to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_checksum(id, key, payload).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(payload);
    out
}

/// The checksum stored in (and verified against) a record header:
/// FNV-1a over the id, the lengths, and both variable sections.
pub fn record_checksum(id: RecordId, key: &[u8], payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(24 + key.len() + payload.len());
    buf.extend_from_slice(&id.key_hash.to_le_bytes());
    buf.extend_from_slice(&id.config_hash.to_le_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(payload);
    fnv1a64(&buf)
}

/// A record parsed (and checksum-verified) out of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    /// The record's content address.
    pub id: RecordId,
    /// The canonical key bytes.
    pub key: Vec<u8>,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Total encoded length, bytes.
    pub len: usize,
}

/// Parses the record starting at `buf[offset..]`, verifying framing and
/// checksum.
///
/// # Errors
///
/// Returns a static description of the first problem (truncation, bad
/// magic or version, insane lengths, checksum mismatch) — the scan and
/// recall paths treat them all identically, as "not a valid record".
pub fn parse_record(buf: &[u8], offset: usize) -> Result<ParsedRecord, &'static str> {
    let rec = buf.get(offset..).ok_or("offset past end")?;
    if rec.len() < RECORD_HEADER_BYTES {
        return Err("truncated header");
    }
    let u32_at = |at: usize| u32::from_le_bytes(rec[at..at + 4].try_into().unwrap_or([0; 4]));
    let u64_at = |at: usize| u64::from_le_bytes(rec[at..at + 8].try_into().unwrap_or([0; 8]));
    if u32_at(0) != RECORD_MAGIC {
        return Err("bad record magic");
    }
    if u32_at(4) != FORMAT_VERSION {
        return Err("unknown format version");
    }
    let id = RecordId {
        key_hash: u64_at(8),
        config_hash: u64_at(16),
    };
    let key_len = u32_at(24);
    let payload_len = u32_at(28);
    if key_len > MAX_KEY_BYTES || payload_len > MAX_PAYLOAD_BYTES {
        return Err("insane record lengths");
    }
    let checksum = u64_at(32);
    let total = RECORD_HEADER_BYTES + key_len as usize + payload_len as usize;
    if rec.len() < total {
        return Err("truncated record body");
    }
    let key = &rec[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + key_len as usize];
    let payload = &rec[RECORD_HEADER_BYTES + key_len as usize..total];
    if record_checksum(id, key, payload) != checksum {
        return Err("checksum mismatch");
    }
    Ok(ParsedRecord {
        id,
        key: key.to_vec(),
        payload: payload.to_vec(),
        len: total,
    })
}

/// Scans one segment into `index`; returns how many torn/corrupt tail
/// records were skipped (0 or 1 — the scan stops at the first).
fn scan_segment(path: &Path, index: &mut HashMap<RecordId, Loc>) -> io::Result<u64> {
    let buf = fs::read(path)?;
    if buf.len() < SEGMENT_MAGIC.len() || &buf[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // Not (yet) a segment of ours: an empty or foreign file. Skip it
        // entirely but count it if it has content claiming otherwise.
        return Ok(u64::from(!buf.is_empty()));
    }
    let shared_path = Arc::new(path.to_path_buf());
    let mut offset = SEGMENT_MAGIC.len();
    let mut torn = 0u64;
    while offset < buf.len() {
        match parse_record(&buf, offset) {
            Ok(record) => {
                index.insert(
                    record.id,
                    Loc {
                        path: Arc::clone(&shared_path),
                        offset: offset as u64,
                        len: record.len as u32,
                    },
                );
                offset += record.len;
            }
            Err(_) => {
                // A torn tail (crash mid-append) or bit rot: everything
                // before this offset is intact and indexed; ignore the
                // rest of the file.
                torn = 1;
                break;
            }
        }
    }
    Ok(torn)
}

/// Re-reads `loc` from disk and verifies it end to end against the
/// expected id and key bytes.
///
/// # Errors
///
/// Any I/O failure, framing damage, checksum mismatch, or id/key
/// disagreement — the caller treats every case as a miss.
fn read_verified(loc: &Loc, id: RecordId, key: &[u8]) -> Result<Vec<u8>, &'static str> {
    let mut file = fs::File::open(loc.path.as_path()).map_err(|_| "segment unreadable")?;
    file.seek(SeekFrom::Start(loc.offset))
        .map_err(|_| "seek failed")?;
    let mut buf = vec![0u8; loc.len as usize];
    file.read_exact(&mut buf).map_err(|_| "short read")?;
    #[cfg(feature = "store-corruption-bug")]
    {
        // Seeded bug for the CI negative smoke: trust the index blindly
        // and slice the payload out without verifying anything. The
        // corruption tests must turn this into a failure.
        if buf.len() >= RECORD_HEADER_BYTES {
            let key_len = u32::from_le_bytes(buf[24..28].try_into().unwrap_or([0; 4])) as usize;
            let start = RECORD_HEADER_BYTES + key_len;
            if start <= buf.len() {
                return Ok(buf[start..].to_vec());
            }
        }
        return Err("truncated record body");
    }
    #[cfg(not(feature = "store-corruption-bug"))]
    {
        let record = parse_record(&buf, 0)?;
        if record.id != id {
            return Err("record id mismatch");
        }
        if record.key != key {
            return Err("key bytes mismatch (hash collision or damage)");
        }
        Ok(record.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn record_round_trips_through_encode_parse() {
        let id = RecordId::of(b"key-bytes", 7);
        let bytes = encode_record(id, b"key-bytes", b"payload!");
        let parsed = parse_record(&bytes, 0).expect("parses");
        assert_eq!(parsed.id, id);
        assert_eq!(parsed.key, b"key-bytes");
        assert_eq!(parsed.payload, b"payload!");
        assert_eq!(parsed.len, bytes.len());
    }

    #[test]
    fn parse_rejects_truncation_and_damage() {
        let id = RecordId::of(b"k", 1);
        let bytes = encode_record(id, b"k", b"0123456789");
        for cut in [0, 10, RECORD_HEADER_BYTES, bytes.len() - 1] {
            assert!(parse_record(&bytes[..cut], 0).is_err(), "cut={cut}");
        }
        for flip in [0, 9, 33, RECORD_HEADER_BYTES, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            assert!(parse_record(&bad, 0).is_err(), "flip={flip}");
        }
    }
}
