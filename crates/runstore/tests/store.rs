//! Byte-level durability tests for the run store: round-trips, restart
//! reuse, torn-tail recovery, and flip-one-byte corruption detection.
//!
//! The corruption tests double as the CI negative smoke: with
//! `--features store-corruption-bug` (recall skips read-back
//! verification) they MUST fail, proving the verification path is load-
//! bearing and the tests would catch its removal.

use std::fs;
use std::path::PathBuf;

use runstore::{RecordId, RunStore, RECORD_HEADER_BYTES, SEGMENT_MAGIC};

/// A fresh scratch directory under the system temp dir, unique per test
/// and per process (no tempdir crate in the workspace).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("runstore-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn payload(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| tag ^ (i as u8)).collect()
}

/// The single segment file a test produced (fails if there are several).
fn only_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "runs"))
        .collect();
    assert_eq!(segs.len(), 1, "expected exactly one segment in {dir:?}");
    segs.pop().expect("one segment")
}

#[test]
fn append_flush_recall_round_trips() {
    let dir = scratch("round-trip");
    let store = RunStore::open(&dir).expect("open");
    let key = b"benchmark=gcc/interval=4096".to_vec();
    let id = RecordId::of(&key, 0xc0ff_ee00);
    let body = payload(0x5a, 280);

    assert_eq!(store.recall(id, &key), None, "empty store misses");
    store.append(id, key.clone(), body.clone());
    store.flush();
    assert_eq!(store.recall(id, &key), Some(body.clone()));

    let c = store.counters();
    assert_eq!((c.hits, c.misses, c.appends), (1, 1, 1));
    assert_eq!(c.verify_failures, 0);
    assert_eq!(c.records, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_reuses_the_warm_store() {
    let dir = scratch("restart");
    let keys: Vec<Vec<u8>> = (0..16u8).map(|i| vec![b'k', i]).collect();
    {
        let store = RunStore::open(&dir).expect("open cold");
        for (i, key) in keys.iter().enumerate() {
            let id = RecordId::of(key, 7);
            store.append(id, key.clone(), payload(i as u8, 64 + i));
        }
        store.flush();
    } // dropped: flusher joined, records durable

    let warm = RunStore::open(&dir).expect("open warm");
    assert_eq!(warm.len(), keys.len());
    for (i, key) in keys.iter().enumerate() {
        let id = RecordId::of(key, 7);
        assert_eq!(
            warm.recall(id, key),
            Some(payload(i as u8, 64 + i)),
            "record {i} must survive restart bitwise-intact"
        );
    }
    let c = warm.counters();
    assert_eq!(c.hits, keys.len() as u64);
    assert_eq!(c.appends, 0, "warm recalls must not rewrite anything");
    assert_eq!(c.torn_records, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dropping_the_store_flushes_queued_appends() {
    let dir = scratch("drop-flush");
    let key = b"queued".to_vec();
    let id = RecordId::of(&key, 1);
    {
        let store = RunStore::open(&dir).expect("open");
        store.append(id, key.clone(), payload(9, 100));
        // No explicit flush: Drop must drain the queue before joining.
    }
    let store = RunStore::open(&dir).expect("reopen");
    assert_eq!(store.recall(id, &key), Some(payload(9, 100)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_skipped_and_earlier_records_survive() {
    let dir = scratch("torn-tail");
    let keys: Vec<Vec<u8>> = (0..3u8).map(|i| vec![b't', i]).collect();
    {
        let store = RunStore::open(&dir).expect("open");
        for (i, key) in keys.iter().enumerate() {
            store.append(RecordId::of(key, 3), key.clone(), payload(i as u8, 50));
        }
        store.flush();
    }
    // Crash mid-append: cut the last record short.
    let seg = only_segment(&dir);
    let len = fs::metadata(&seg).expect("segment metadata").len();
    let file = fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment for truncation");
    file.set_len(len - 7).expect("truncate tail");
    drop(file);

    let store = RunStore::open(&dir).expect("open torn");
    let c = store.counters();
    assert_eq!(c.torn_records, 1, "the cut record is counted as torn");
    assert_eq!(store.len(), 2, "records before the tear stay indexed");
    for (i, key) in keys.iter().take(2).enumerate() {
        assert_eq!(
            store.recall(RecordId::of(key, 3), key),
            Some(payload(i as u8, 50))
        );
    }
    // The torn record reads as a miss and can be re-appended cleanly.
    let last = &keys[2];
    let last_id = RecordId::of(last, 3);
    assert_eq!(store.recall(last_id, last), None);
    store.append(last_id, last.clone(), payload(2, 50));
    store.flush();
    assert_eq!(store.recall(last_id, last), Some(payload(2, 50)));
    let _ = fs::remove_dir_all(&dir);
}

/// Flipping one payload byte must be caught by the read-back checksum:
/// the recall reads as a miss (never the damaged bytes), the entry is
/// invalidated, and a recompute-and-re-append serves the true payload
/// again. This is the test the `store-corruption-bug` feature must fail.
#[test]
fn flipped_payload_byte_is_detected_and_recomputed() {
    let dir = scratch("flip-byte");
    let key = b"corruptible-key".to_vec();
    let id = RecordId::of(&key, 11);
    let body = payload(0xa5, 280);
    {
        let store = RunStore::open(&dir).expect("open");
        store.append(id, key.clone(), body.clone());
        store.flush();
    }
    // Re-open on the intact file (the record is indexed), then flip one
    // byte in the middle of the stored payload — bit rot *after* open,
    // which only the per-recall read-back verification can catch. File
    // layout: segment magic, record header, key bytes, payload.
    let store = RunStore::open(&dir).expect("open damaged");
    let seg = only_segment(&dir);
    let mut bytes = fs::read(&seg).expect("read segment");
    let payload_at = SEGMENT_MAGIC.len() + RECORD_HEADER_BYTES + key.len() + body.len() / 2;
    bytes[payload_at] ^= 0x01;
    fs::write(&seg, &bytes).expect("write damaged segment");
    assert_eq!(
        store.recall(id, &key),
        None,
        "a damaged record must read as a miss, never as data"
    );
    let c = store.counters();
    assert_eq!(c.verify_failures, 1, "the damage is counted");
    assert_eq!(c.misses, 1);
    assert_eq!(c.hits, 0);

    // The caller's fall-through: recompute and re-append, after which the
    // recall serves the true payload, bitwise-equal to the original.
    store.append(id, key.clone(), body.clone());
    store.flush();
    assert_eq!(store.recall(id, &key), Some(body));
    let _ = fs::remove_dir_all(&dir);
}

/// Same contract for damage inside the *key* bytes: read-back compares
/// the full stored key against the caller's, so the flip reads as a miss.
#[test]
fn flipped_key_byte_is_detected() {
    let dir = scratch("flip-key");
    let key = b"key-under-test".to_vec();
    let id = RecordId::of(&key, 13);
    {
        let store = RunStore::open(&dir).expect("open");
        store.append(id, key.clone(), payload(1, 40));
        store.flush();
    }
    let store = RunStore::open(&dir).expect("open damaged");
    let seg = only_segment(&dir);
    let mut bytes = fs::read(&seg).expect("read segment");
    let key_at = SEGMENT_MAGIC.len() + RECORD_HEADER_BYTES + key.len() / 2;
    bytes[key_at] ^= 0x80;
    fs::write(&seg, &bytes).expect("write damaged segment");

    assert_eq!(store.recall(id, &key), None);
    assert_eq!(store.counters().verify_failures, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn invalidate_turns_an_entry_into_a_miss() {
    let dir = scratch("invalidate");
    let store = RunStore::open(&dir).expect("open");
    let key = b"decodes-badly".to_vec();
    let id = RecordId::of(&key, 17);
    store.append(id, key.clone(), payload(3, 30));
    store.flush();
    assert!(store.recall(id, &key).is_some());
    // The caller decoded the payload and rejected it: drop the entry.
    store.invalidate(id);
    assert_eq!(store.recall(id, &key), None);
    let c = store.counters();
    assert_eq!(c.verify_failures, 1);
    assert_eq!(c.records, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Two store handles on one directory (modelling two processes) each
/// append to their own segment; a fresh open sees the union.
#[test]
fn concurrent_openers_write_private_segments() {
    let dir = scratch("two-writers");
    let a = RunStore::open(&dir).expect("open a");
    let b = RunStore::open(&dir).expect("open b");
    let ka = b"from-a".to_vec();
    let kb = b"from-b".to_vec();
    a.append(RecordId::of(&ka, 1), ka.clone(), payload(0xaa, 20));
    b.append(RecordId::of(&kb, 1), kb.clone(), payload(0xbb, 20));
    a.flush();
    b.flush();
    drop(a);
    drop(b);

    let merged = RunStore::open(&dir).expect("open merged");
    assert_eq!(merged.len(), 2);
    assert_eq!(
        merged.recall(RecordId::of(&ka, 1), &ka),
        Some(payload(0xaa, 20))
    );
    assert_eq!(
        merged.recall(RecordId::of(&kb, 1), &kb),
        Some(payload(0xbb, 20))
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A foreign or half-created file in the store directory is ignored, not
/// a crash, and does not pollute the index.
#[test]
fn foreign_files_in_the_store_dir_are_ignored() {
    let dir = scratch("foreign");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("seg-garbage.runs"), b"not a segment at all").expect("plant garbage");
    fs::write(dir.join("notes.txt"), b"unrelated").expect("plant bystander");
    let store = RunStore::open(&dir).expect("open");
    assert_eq!(store.len(), 0);
    let key = b"still-works".to_vec();
    let id = RecordId::of(&key, 2);
    store.append(id, key.clone(), payload(7, 25));
    store.flush();
    assert_eq!(store.recall(id, &key), Some(payload(7, 25)));
    let _ = fs::remove_dir_all(&dir);
}
