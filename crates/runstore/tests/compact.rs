//! Compaction, eviction-budget, and segment-shipping tests.
//!
//! The compaction invariants are property-tested: whatever mix of
//! appends and invalidations precedes it, `compact()` must keep every
//! live record recallable bitwise-intact, drop every invalidated one,
//! never grow the store, and be idempotent (a second pass retires
//! nothing). The shipping tests pin the import side: only
//! checksum-verified records land, a torn shipped segment installs its
//! intact prefix only, and garbage installs nothing.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use runstore::{RecordId, RunStore, StoreBudget};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("runstore-compact-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// splitmix64: cheap deterministic expansion of a seed.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn record(i: usize, seed: u64) -> (RecordId, Vec<u8>, Vec<u8>) {
    let key = format!("key-{seed:016x}-{i}").into_bytes();
    let mut x = seed ^ i as u64;
    let len = 32 + (mix(&mut x) % 200) as usize;
    let payload: Vec<u8> = (0..len).map(|_| mix(&mut x) as u8).collect();
    (RecordId::of(&key, 7), key, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Core compaction invariants, under a random append/invalidate mix
    /// spread over several segment files (one per store generation).
    #[test]
    fn compaction_loses_no_live_record_and_drops_every_dead_one(seed in 0u64..u64::MAX) {
        let dir = scratch(&format!("prop-{seed:016x}"));
        let mut x = seed;
        let total = 8 + (mix(&mut x) % 24) as usize;
        // Write in three generations so the dir holds several segments.
        for generation in 0..3 {
            let store = RunStore::open(&dir).expect("open");
            for i in (0..total).filter(|i| i % 3 == generation) {
                let (id, key, payload) = record(i, seed);
                store.append(id, key, payload);
            }
            store.flush();
        }
        let store = RunStore::open(&dir).expect("reopen");
        prop_assert_eq!(store.len(), total);
        let dead: Vec<usize> = (0..total).filter(|_| mix(&mut x).is_multiple_of(2)).collect();
        for &i in &dead {
            store.invalidate(record(i, seed).0);
        }
        let live: Vec<usize> = (0..total).filter(|i| !dead.contains(i)).collect();
        // `invalidate` counts one verify failure per call by design;
        // compaction itself must add none on an undamaged store.
        let failures_before = store.counters().verify_failures;

        let report = store.compact().expect("compact");
        prop_assert_eq!(report.live_records, live.len() as u64);
        prop_assert!(report.bytes_after <= report.bytes_before,
            "compaction must never grow the store: {report:?}");
        prop_assert_eq!(store.disk_bytes().expect("disk bytes"), report.bytes_after);

        // Every live record is still recallable, bitwise-intact...
        for &i in &live {
            let (id, key, payload) = record(i, seed);
            prop_assert_eq!(store.recall(id, &key), Some(payload), "record {}", i);
        }
        // ...every invalidated one is gone, on disk as well as in the
        // index (dead ids miss even after a rescan).
        for &i in &dead {
            let (id, key, _) = record(i, seed);
            prop_assert_eq!(store.recall(id, &key), None);
        }
        prop_assert_eq!(store.counters().verify_failures, failures_before);
        drop(store);
        let rescan = RunStore::open(&dir).expect("rescan");
        prop_assert_eq!(rescan.len(), live.len());

        // Recompaction is idempotent: everything already lives in one
        // fully-live segment, so nothing is retired and no byte moves.
        let again = rescan.compact().expect("recompact");
        prop_assert_eq!(again.segments_retired, 0);
        prop_assert_eq!(again.bytes_after, report.bytes_after);
        prop_assert_eq!(again.live_records, live.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A shipped segment round-trips store-to-store: export on one side,
    /// import on the other, every record recallable and re-import a
    /// no-op. Torn shipped bytes install the intact prefix only.
    #[test]
    fn shipped_segments_install_verified_records_only(seed in 0u64..u64::MAX) {
        let src_dir = scratch(&format!("ship-src-{seed:016x}"));
        let dst_dir = scratch(&format!("ship-dst-{seed:016x}"));
        let mut x = seed;
        let total = 4 + (mix(&mut x) % 12) as usize;
        let src = RunStore::open(&src_dir).expect("open src");
        for i in 0..total {
            let (id, key, payload) = record(i, seed);
            src.append(id, key, payload);
        }
        src.flush();
        let inventory = src.inventory().expect("inventory");
        prop_assert_eq!(inventory.len(), 1);
        prop_assert_eq!(inventory[0].records, total as u64);
        let shipped = src.export_segment(&inventory[0].name).expect("export");
        prop_assert_eq!(shipped.len() as u64, inventory[0].bytes);

        let dst = RunStore::open(&dst_dir).expect("open dst");
        let report = dst.import_segment(&shipped).expect("import");
        prop_assert_eq!(report.installed, total as u64);
        prop_assert_eq!((report.skipped, report.rejected), (0, 0));
        for i in 0..total {
            let (id, key, payload) = record(i, seed);
            prop_assert_eq!(dst.recall(id, &key), Some(payload));
        }
        // Idempotent: a second anti-entropy pass installs nothing.
        let again = dst.import_segment(&shipped).expect("re-import");
        prop_assert_eq!((again.installed, again.skipped), (0, total as u64));

        // A torn transfer (cut mid-record) lands the intact prefix only.
        let torn_dir = scratch(&format!("ship-torn-{seed:016x}"));
        let torn_store = RunStore::open(&torn_dir).expect("open torn");
        let cut = shipped.len() - 1 - (mix(&mut x) as usize % (shipped.len() / 2));
        let report = torn_store.import_segment(&shipped[..cut]).expect("torn import");
        prop_assert_eq!(report.rejected, 1, "the cut record must be rejected");
        prop_assert!(report.installed < total as u64);
        for (i, installed) in (0..total).map(|i| (i, i < report.installed as usize)) {
            let (id, key, payload) = record(i, seed);
            let got = torn_store.recall(id, &key);
            prop_assert_eq!(got, installed.then_some(payload), "record {}", i);
        }
        for dir in [&src_dir, &dst_dir, &torn_dir] {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

#[test]
fn import_rejects_bytes_without_segment_magic() {
    let dir = scratch("bad-magic");
    let store = RunStore::open(&dir).expect("open");
    for bytes in [&b""[..], &b"JUNK"[..], &[0u8; 64][..]] {
        let report = store.import_segment(bytes).expect("import");
        assert_eq!(report.rejected, 1);
        assert_eq!((report.installed, report.skipped), (0, 0));
    }
    assert!(store.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn export_segment_refuses_non_segment_names() {
    let dir = scratch("export-names");
    let store = RunStore::open(&dir).expect("open");
    for name in [
        "../../../etc/passwd",
        "seg-0123/evil.runs",
        "notaseg.runs",
        "seg-0123456789abcdef-0123abcd.bad",
        "",
    ] {
        assert!(
            store.export_segment(name).is_err(),
            "{name:?} must be refused"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn byte_budget_evicts_oldest_segments_first() {
    let dir = scratch("budget-bytes");
    // Three generations = three segment files, oldest holds keys 0..8.
    for generation in 0..3u8 {
        let store = RunStore::open(&dir).expect("open");
        for i in 0..8u8 {
            let key = vec![b'g', generation, i];
            store.append(RecordId::of(&key, 1), key, vec![generation; 512]);
        }
        store.flush();
    }
    let unbounded = RunStore::open(&dir).expect("reopen");
    let total_bytes = unbounded.disk_bytes().expect("bytes");
    let seg_bytes = total_bytes / 3;
    drop(unbounded);

    let budget = StoreBudget {
        max_bytes: Some(2 * seg_bytes + seg_bytes / 2),
        max_age: None,
    };
    let store = RunStore::open_with_budget(&dir, budget).expect("open bounded");
    assert_eq!(store.budget(), budget);
    let evicted = store.enforce_budget().expect("enforce");
    assert_eq!(evicted, 1, "exactly the oldest segment goes");
    assert!(store.disk_bytes().expect("bytes") <= 2 * seg_bytes + seg_bytes / 2);
    // The oldest generation misses now; the two newer ones still hit.
    for i in 0..8u8 {
        let key = vec![b'g', 0, i];
        assert_eq!(store.recall(RecordId::of(&key, 1), &key), None);
        let key = vec![b'g', 2, i];
        assert_eq!(
            store.recall(RecordId::of(&key, 1), &key),
            Some(vec![2u8; 512])
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn age_budget_drops_expired_segments_at_flush_time() {
    let dir = scratch("budget-age");
    {
        let store = RunStore::open(&dir).expect("open");
        let key = b"old".to_vec();
        store.append(RecordId::of(&key, 1), key, vec![1; 64]);
        store.flush();
    }
    std::thread::sleep(Duration::from_millis(50));
    let budget = StoreBudget {
        max_bytes: None,
        max_age: Some(Duration::from_millis(10)),
    };
    let store = RunStore::open_with_budget(&dir, budget).expect("open bounded");
    assert_eq!(store.len(), 1, "scan still sees the record before flush");
    let key = b"fresh".to_vec();
    store.append(RecordId::of(&key, 1), key.clone(), vec![2; 64]);
    store.flush(); // flush enforces the budget on a bounded store
    let old = b"old".to_vec();
    assert_eq!(store.recall(RecordId::of(&old, 1), &old), None, "expired");
    assert_eq!(store.recall(RecordId::of(&key, 1), &key), Some(vec![2; 64]));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_reclaims_invalidated_and_superseded_bytes() {
    let dir = scratch("reclaim");
    let store = RunStore::open(&dir).expect("open");
    let keep: Vec<u8> = b"keep".to_vec();
    let drop_key: Vec<u8> = b"drop".to_vec();
    store.append(RecordId::of(&keep, 1), keep.clone(), vec![7; 4096]);
    store.append(RecordId::of(&drop_key, 1), drop_key.clone(), vec![8; 4096]);
    store.flush();
    store.invalidate(RecordId::of(&drop_key, 1));
    let before = store.disk_bytes().expect("bytes");
    let report = store.compact().expect("compact");
    assert_eq!(report.live_records, 1);
    assert_eq!(report.segments_retired, 1);
    assert!(
        report.bytes_after < before,
        "dead bytes must be reclaimed: {report:?}"
    );
    assert_eq!(
        store.recall(RecordId::of(&keep, 1), &keep),
        Some(vec![7; 4096])
    );
    assert_eq!(store.recall(RecordId::of(&drop_key, 1), &drop_key), None);

    // retire_config + compact is the bulk-retirement path.
    assert_eq!(store.retire_config(1), 1);
    let report = store.compact().expect("compact retired");
    assert_eq!(report.live_records, 0);
    assert_eq!(store.disk_bytes().expect("bytes"), 0);
    let _ = fs::remove_dir_all(&dir);
}
