//! CACTI-style analytical capacitance estimation for SRAM arrays.
//!
//! CACTI decomposes an array access into decoder, wordline, bitline, sense,
//! and output stages and sums `C·V²` (with reduced swing on the bitlines).
//! This module reproduces that decomposition with per-node unit
//! capacitances derived from the gate-oxide capacitance of the
//! [`hotleakage`] technology tables, so the dynamic-energy scale moves with
//! the same technology parameters the leakage model uses.

use hotleakage::{Environment, TechNode};
use serde::{Deserialize, Serialize};
use units::{Farads, Joules, Volts};

/// Documented conversion: geometry counts are exact in `f64` far beyond
/// any array dimension this model reaches (< 2^53).
fn count(n: usize) -> f64 {
    n as f64 // lint: allow(lossy-cast): usize geometry counts are exact in f64
}

/// Per-node unit capacitances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitCaps {
    /// Gate capacitance per micrometre of transistor width, farads.
    pub gate_per_um: f64,
    /// Drain/source diffusion capacitance per micrometre of width, farads.
    pub diff_per_um: f64,
    /// Wire capacitance per micrometre of length, farads.
    pub wire_per_um: f64,
    /// Cell pitch (width = height assumed) in micrometres.
    pub cell_pitch_um: f64,
}

impl UnitCaps {
    /// Unit capacitances for the given node, derived from `C_ox · L` plus
    /// standard diffusion/wire ratios.
    pub fn for_node(node: TechNode) -> Self {
        let p = node.params();
        let l_um = p.feature_nm / 1000.0;
        // C_ox is F/m²; width 1 µm × length L gives gate cap in farads.
        let gate_per_um = p.cox() * 1.0e-6 * (p.feature_nm * 1.0e-9);
        UnitCaps {
            gate_per_um,
            // Diffusion cap tracks gate cap at roughly half its value.
            diff_per_um: 0.5 * gate_per_um,
            // Local-layer wire: ~0.2 fF/µm, nearly constant across nodes.
            wire_per_um: 0.2e-15,
            // SRAM cell pitch ≈ 20 feature sizes on a side.
            cell_pitch_um: 20.0 * l_um,
        }
    }
}

/// Geometry of one SRAM array bank for energy purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Number of rows (wordlines).
    pub rows: usize,
    /// Number of columns (bitline pairs).
    pub cols: usize,
    /// Bits actually read/written per access (after column muxing).
    pub access_bits: usize,
}

impl ArrayGeometry {
    /// Geometry for a cache data array: `lines` rows of `bits_per_line`
    /// columns, reading a full line per access.
    pub fn cache_data(lines: usize, bits_per_line: usize) -> Self {
        ArrayGeometry {
            rows: lines,
            cols: bits_per_line,
            access_bits: bits_per_line,
        }
    }

    /// Geometry for a cache tag array.
    pub fn cache_tag(lines: usize, tag_bits: usize) -> Self {
        ArrayGeometry {
            rows: lines,
            cols: tag_bits,
            access_bits: tag_bits,
        }
    }
}

/// Capacitances of one access path through an array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayCaps {
    /// Decoder input + predecode capacitance.
    pub decoder: Farads,
    /// One wordline (gate cap of a row's access devices + wire).
    pub wordline: Farads,
    /// One bitline (diffusion of all rows + wire).
    pub bitline: Farads,
    /// Sense-amplifier internal capacitance per column.
    pub sense: Farads,
    /// Output-driver and bus capacitance per bit.
    pub output: Farads,
}

/// Fraction of `V_dd` the bitlines swing before the sense amps fire.
pub const BITLINE_SWING: f64 = 0.15;

/// Computes the access-path capacitances of `geom` at `node`.
pub fn array_caps(node: TechNode, geom: &ArrayGeometry) -> ArrayCaps {
    let u = UnitCaps::for_node(node);
    let row_wire_um = count(geom.cols) * u.cell_pitch_um;
    let col_wire_um = count(geom.rows) * u.cell_pitch_um;
    // Access-device widths ≈ 1.2 feature sizes (matches the SRAM cell model).
    let access_w_um = 1.2 * node.params().feature_nm / 1000.0;
    ArrayCaps {
        // Predecode + final NAND gates: ~4 gate loads per address bit.
        decoder: Farads::new(
            4.0 * count(geom.rows.max(2)).log2() * 3.0 * u.gate_per_um * access_w_um * 8.0,
        ),
        wordline: Farads::new(
            count(geom.cols) * 2.0 * u.gate_per_um * access_w_um + row_wire_um * u.wire_per_um,
        ),
        bitline: Farads::new(
            count(geom.rows) * u.diff_per_um * access_w_um + col_wire_um * u.wire_per_um,
        ),
        sense: Farads::new(10.0 * u.gate_per_um * access_w_um),
        output: Farads::new(20.0 * u.gate_per_um * access_w_um + row_wire_um * u.wire_per_um),
    }
}

/// Dynamic energy of one **read** access to the array.
///
/// Decoder and wordline swing the full supply; each of the `cols` bitline
/// pairs swings `BITLINE_SWING·V_dd`; sensing and output driving swing the
/// accessed bits full rail.
pub fn read_energy(env: &Environment, geom: &ArrayGeometry) -> Joules {
    let caps = array_caps(env.node(), geom);
    let v = Volts::new(env.vdd());
    let full = v.squared();
    let swing = v.squared() * BITLINE_SWING;
    caps.decoder * full
        + caps.wordline * full
        + count(geom.cols) * 2.0 * caps.bitline * swing
        + count(geom.cols) * caps.sense * full
        + count(geom.access_bits) * caps.output * full
}

/// Dynamic energy of one **write** access: like a read, but the written
/// bits drive their bitlines full-rail instead of sensing.
pub fn write_energy(env: &Environment, geom: &ArrayGeometry) -> Joules {
    let caps = array_caps(env.node(), geom);
    let v = Volts::new(env.vdd());
    let full = v.squared();
    let swing = v.squared() * BITLINE_SWING;
    caps.decoder * full
        + caps.wordline * full
        + count(geom.access_bits) * 2.0 * caps.bitline * full
        + count(geom.cols - geom.access_bits.min(geom.cols)) * 2.0 * caps.bitline * swing
        + count(geom.access_bits) * caps.output * full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Environment {
        Environment::new(TechNode::N70, 0.9, 383.15).unwrap()
    }

    #[test]
    fn l1_access_energy_plausible() {
        // A 64 KB L1 read at 70 nm should land in the 0.05–2 nJ band
        // (Wattch-class models report ~0.1–1 nJ).
        let geom = ArrayGeometry::cache_data(1024, 512);
        let e = read_energy(&env(), &geom);
        assert!(
            e > Joules::new(0.05e-9) && e < Joules::new(5e-9),
            "L1 read energy {e} implausible"
        );
    }

    #[test]
    fn bigger_arrays_cost_more() {
        let small = ArrayGeometry::cache_data(256, 512);
        let large = ArrayGeometry::cache_data(4096, 512);
        assert!(read_energy(&env(), &large) > read_energy(&env(), &small));
    }

    #[test]
    fn tag_probe_cheaper_than_data_read() {
        let data = ArrayGeometry::cache_data(1024, 512);
        let tag = ArrayGeometry::cache_tag(1024, 30);
        assert!(read_energy(&env(), &tag) < read_energy(&env(), &data) * 0.25);
    }

    #[test]
    fn write_and_read_same_order_of_magnitude() {
        let geom = ArrayGeometry::cache_data(1024, 512);
        let r = read_energy(&env(), &geom);
        let w = write_energy(&env(), &geom);
        assert!(w > r * 0.2 && w < r * 20.0, "r={r} w={w}");
    }

    #[test]
    fn energy_scales_with_vdd_squared() {
        let geom = ArrayGeometry::cache_data(1024, 512);
        let hi = Environment::new(TechNode::N70, 1.0, 383.15).unwrap();
        let lo = Environment::new(TechNode::N70, 0.5, 383.15).unwrap();
        let ratio = read_energy(&hi, &geom) / read_energy(&lo, &geom);
        assert!((ratio - 4.0).abs() < 0.1, "CV² scaling, got {ratio}");
    }

    #[test]
    fn newer_nodes_cheaper_per_access() {
        let geom = ArrayGeometry::cache_data(1024, 512);
        let old = Environment::nominal(TechNode::N180);
        let new = Environment::nominal(TechNode::N70);
        assert!(read_energy(&new, &geom) < read_energy(&old, &geom));
    }
}
