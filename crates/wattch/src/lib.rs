//! # wattch
//!
//! A from-scratch, Wattch-style architectural **dynamic power** model.
//!
//! Wattch (Brooks, Tiwari, Martonosi — ISCA 2000) estimates per-access
//! energies of microarchitectural structures from CACTI-derived analytical
//! capacitances, then multiplies by activity counts gathered during timing
//! simulation. This crate provides the same two halves:
//!
//! * [`cacti`] — analytical capacitance estimation for regular SRAM arrays
//!   (decoder, wordline, bitline, sense amplifier, output path), scaled by
//!   technology node;
//! * [`energy`] — per-access/per-event energies for the structures the
//!   leakage study needs (L1/L2 caches, tag-only probes, register file,
//!   ALU operations, branch predictor, clock), and
//! * [`ledger`] — activity counters that turn event counts into joules.
//!
//! The leakage paper's *net savings* metric charges a leakage-control
//! technique for every extra unit of dynamic energy it induces (extra L2
//! accesses, extra tag wakeups, decay-counter activity, longer runtime), all
//! measured against a no-control baseline run. Those charges are computed
//! with the energies defined here, so leakage savings and dynamic costs are
//! expressed on one consistent scale.
//!
//! ```
//! use wattch::{energy::PowerModel, ledger::EnergyLedger, Event};
//! use hotleakage::{Environment, TechNode};
//!
//! let env = Environment::new(TechNode::N70, 0.9, 383.15)?;
//! let model = PowerModel::alpha21264_like(&env);
//! let mut ledger = EnergyLedger::new();
//! ledger.record(Event::L1dAccess, 1_000);
//! ledger.record(Event::L2Access, 40);
//! let joules = ledger.total_energy(&model);
//! assert!(joules > units::Joules::ZERO);
//! # Ok::<(), hotleakage::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cacti;
pub mod energy;
pub mod ledger;

pub use energy::PowerModel;
pub use ledger::{EnergyLedger, Event};
