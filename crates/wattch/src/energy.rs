//! Per-event dynamic energies for the simulated machine.
//!
//! [`PowerModel`] pre-computes the energy of every countable event at a
//! given operating point. The geometries default to the paper's Table 2
//! machine (64 KB 2-way L1s with 64 B lines, unified 2 MB 2-way L2, 80-entry
//! RUU, 40-entry LSQ), but every structure can be overridden for sensitivity
//! studies.

use hotleakage::Environment;
use serde::{Deserialize, Serialize};
use units::{Farads, Joules, Volts};

use crate::cacti::{self, ArrayGeometry};
use crate::ledger::Event;

/// Geometries of the power-modelled structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineGeometry {
    /// L1 data-cache data array.
    pub l1d_data: ArrayGeometry,
    /// L1 data-cache tag array.
    pub l1d_tag: ArrayGeometry,
    /// L1 instruction-cache data array.
    pub l1i_data: ArrayGeometry,
    /// L1 instruction-cache tag array.
    pub l1i_tag: ArrayGeometry,
    /// Unified L2 data array (one bank's worth per access).
    pub l2_data: ArrayGeometry,
    /// L2 tag array.
    pub l2_tag: ArrayGeometry,
    /// Integer/FP register file.
    pub regfile: ArrayGeometry,
    /// Branch-predictor pattern tables (bimod + GAg + chooser lumped).
    pub bpred: ArrayGeometry,
}

impl MachineGeometry {
    /// The paper's Table 2 machine.
    pub fn alpha21264_like() -> Self {
        MachineGeometry {
            // 64 KB / 64 B lines = 1024 lines of 512 bits.
            l1d_data: ArrayGeometry::cache_data(1024, 512),
            // 38-bit phys addr − 10 index − 6 offset ≈ 22 tag + status ≈ 30.
            l1d_tag: ArrayGeometry::cache_tag(1024, 30),
            l1i_data: ArrayGeometry::cache_data(1024, 512),
            l1i_tag: ArrayGeometry::cache_tag(1024, 30),
            // 2 MB / 64 B = 32 K lines; a 4 K-line bank is accessed at a time.
            l2_data: ArrayGeometry::cache_data(4096, 512),
            l2_tag: ArrayGeometry::cache_tag(4096, 26),
            regfile: ArrayGeometry {
                rows: 80,
                cols: 64,
                access_bits: 64,
            },
            // 4 K-entry 2-bit tables × 3 structures, lumped.
            bpred: ArrayGeometry {
                rows: 4096,
                cols: 6,
                access_bits: 6,
            },
        }
    }
}

/// Pre-computed per-event dynamic energies at one operating point.
///
/// Rebuild the model whenever `V_dd` changes (all energies scale as `C·V²`);
/// temperature does not enter dynamic energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    geometry: MachineGeometry,
    l1d_read: Joules,
    l1d_write: Joules,
    l1d_tag_probe: Joules,
    l1i_read: Joules,
    l2_access: Joules,
    mem_access: Joules,
    regfile_read: Joules,
    regfile_write: Joules,
    alu_op: Joules,
    fp_op: Joules,
    bpred_access: Joules,
    clock_cycle: Joules,
    counter_tick: Joules,
    line_rail_cap: Farads,
}

/// Off-chip/DRAM access energy: dominated by I/O and DRAM core energy; a
/// fixed 2 nJ is representative for early-2000s parts.
pub const DRAM_ACCESS_ENERGY: Joules = Joules::new(2.0e-9);

/// Effective switched capacitance of one 64-bit integer ALU operation.
pub const ALU_OP_CAP: Farads = Farads::new(40.0e-12 / (0.9 * 0.9));

/// Effective switched capacitance of one FP operation (~3× an ALU op).
pub const FP_OP_CAP: Farads = Farads::new(120.0e-12 / (0.9 * 0.9));

/// Global clock network capacitance switched per cycle.
pub const CLOCK_NETWORK_CAP: Farads = Farads::new(300.0e-12);

/// Switched gate capacitance of a 2-bit saturating counter increment.
pub const COUNTER_TICK_CAP: Farads = Farads::new(10.0e-15);

/// Supply-rail capacitance per SRAM cell (~1 fF of rail per cell).
pub const RAIL_CAP_PER_CELL: Farads = Farads::new(1.0e-15);

impl PowerModel {
    /// Builds the model for the Table 2 machine at operating point `env`.
    pub fn alpha21264_like(env: &Environment) -> Self {
        Self::with_geometry(env, MachineGeometry::alpha21264_like())
    }

    /// Builds the model for an explicit machine geometry.
    pub fn with_geometry(env: &Environment, geometry: MachineGeometry) -> Self {
        let v2 = Volts::new(env.vdd()).squared();
        let l1d_data_r = cacti::read_energy(env, &geometry.l1d_data);
        let l1d_data_w = cacti::write_energy(env, &geometry.l1d_data);
        let l1d_tag_r = cacti::read_energy(env, &geometry.l1d_tag);
        let l1i_r = cacti::read_energy(env, &geometry.l1i_data)
            + cacti::read_energy(env, &geometry.l1i_tag);
        let l2 =
            cacti::read_energy(env, &geometry.l2_data) + cacti::read_energy(env, &geometry.l2_tag);
        // One line's worth of supply-rail capacitance: the quantum charged
        // when a drowsy line is restored to full V_dd or a gated line is
        // reconnected.
        #[allow(clippy::cast_precision_loss)]
        let rail_cap = RAIL_CAP_PER_CELL * (geometry.l1d_data.cols as f64); // lint: allow(lossy-cast): usize count exact in f64
        PowerModel {
            geometry,
            l1d_read: l1d_data_r + l1d_tag_r,
            l1d_write: l1d_data_w + l1d_tag_r,
            l1d_tag_probe: l1d_tag_r,
            l1i_read: l1i_r,
            l2_access: l2,
            mem_access: DRAM_ACCESS_ENERGY,
            regfile_read: cacti::read_energy(env, &geometry.regfile),
            regfile_write: cacti::write_energy(env, &geometry.regfile),
            // Datapath ops: a few tens of pJ per 64-bit op at 0.9 V.
            alu_op: ALU_OP_CAP * v2,
            fp_op: FP_OP_CAP * v2,
            bpred_access: cacti::read_energy(env, &geometry.bpred),
            clock_cycle: CLOCK_NETWORK_CAP * v2,
            counter_tick: COUNTER_TICK_CAP * v2,
            line_rail_cap: rail_cap,
        }
    }

    /// The geometry the model was built for.
    pub fn geometry(&self) -> &MachineGeometry {
        &self.geometry
    }

    /// Energy of one occurrence of `event`.
    pub fn energy(&self, event: Event) -> Joules {
        match event {
            Event::L1dAccess => self.l1d_read,
            Event::L1dWrite => self.l1d_write,
            Event::L1dTagProbe => self.l1d_tag_probe,
            Event::L1iAccess => self.l1i_read,
            Event::L2Access => self.l2_access,
            Event::MemAccess => self.mem_access,
            Event::RegfileRead => self.regfile_read,
            Event::RegfileWrite => self.regfile_write,
            Event::AluOp => self.alu_op,
            Event::FpOp => self.fp_op,
            Event::BpredAccess => self.bpred_access,
            Event::ClockCycle => self.clock_cycle,
            Event::CounterTick => self.counter_tick,
        }
    }

    /// Energy to recharge one cache line's supply rail across a voltage step
    /// of `delta_v` (drowsy wake: `V_dd − V_drowsy`; gated-V_ss reconnect:
    /// full `V_dd`).
    pub fn line_rail_energy(&self, delta_v: Volts) -> Joules {
        self.line_rail_cap * delta_v.squared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotleakage::TechNode;

    fn model() -> PowerModel {
        let env = Environment::new(TechNode::N70, 0.9, 383.15).unwrap();
        PowerModel::alpha21264_like(&env)
    }

    #[test]
    fn l2_costs_more_than_l1() {
        let m = model();
        assert!(m.energy(Event::L2Access) > m.energy(Event::L1dAccess) * 1.5);
    }

    #[test]
    fn memory_costs_more_than_l2() {
        let m = model();
        assert!(m.energy(Event::MemAccess) > m.energy(Event::L2Access));
    }

    #[test]
    fn tag_probe_much_cheaper_than_full_access() {
        let m = model();
        assert!(m.energy(Event::L1dTagProbe) < m.energy(Event::L1dAccess) * 0.3);
    }

    #[test]
    fn counter_tick_is_negligible_vs_cache_access() {
        let m = model();
        assert!(m.energy(Event::CounterTick) < m.energy(Event::L1dAccess) * 1e-3);
    }

    #[test]
    fn all_events_have_positive_energy() {
        let m = model();
        for event in Event::ALL {
            assert!(m.energy(event) > Joules::ZERO, "{event:?}");
        }
    }

    #[test]
    fn rail_energy_quadratic_in_step() {
        let m = model();
        let e1 = m.line_rail_energy(Volts::new(0.3));
        let e2 = m.line_rail_energy(Volts::new(0.6));
        assert!((e2 / e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wake_energy_far_below_l2_access() {
        // The key energy asymmetry of the study: restoring a drowsy line
        // (~0.6 V step on one line's rail) must be much cheaper than an
        // L2 access, else drowsy would never win anywhere.
        let m = model();
        assert!(m.line_rail_energy(Volts::new(0.62)) < m.energy(Event::L2Access) * 0.05);
    }

    #[test]
    fn clock_power_reasonable_at_5_6ghz() {
        let m = model();
        let p = m.energy(Event::ClockCycle).get() * 5.6e9;
        assert!(p > 0.3 && p < 5.0, "clock power {p} W");
    }
}
