//! Activity counting and energy accumulation.

use serde::{Deserialize, Serialize};
use units::Joules;

use crate::energy::PowerModel;

/// A countable dynamic-energy event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Event {
    /// L1 data-cache read access (data + tag).
    L1dAccess,
    /// L1 data-cache write access (data + tag).
    L1dWrite,
    /// L1 data-cache tag-only probe (drowsy wake checks, decay snooping).
    L1dTagProbe,
    /// L1 instruction-cache access.
    L1iAccess,
    /// Unified L2 access (any cause: true miss, induced miss, writeback).
    L2Access,
    /// Main-memory access.
    MemAccess,
    /// Register-file read port use.
    RegfileRead,
    /// Register-file write port use.
    RegfileWrite,
    /// Integer ALU operation.
    AluOp,
    /// Floating-point operation.
    FpOp,
    /// Branch-predictor + BTB access.
    BpredAccess,
    /// One clock cycle of global clock-network switching.
    ClockCycle,
    /// One decay-counter update (global or per-line two-bit counter).
    CounterTick,
}

impl Event {
    /// Every event kind, for iteration in tests and reports.
    pub const ALL: [Event; 13] = [
        Event::L1dAccess,
        Event::L1dWrite,
        Event::L1dTagProbe,
        Event::L1iAccess,
        Event::L2Access,
        Event::MemAccess,
        Event::RegfileRead,
        Event::RegfileWrite,
        Event::AluOp,
        Event::FpOp,
        Event::BpredAccess,
        Event::ClockCycle,
        Event::CounterTick,
    ];

    fn index(self) -> usize {
        match self {
            Event::L1dAccess => 0,
            Event::L1dWrite => 1,
            Event::L1dTagProbe => 2,
            Event::L1iAccess => 3,
            Event::L2Access => 4,
            Event::MemAccess => 5,
            Event::RegfileRead => 6,
            Event::RegfileWrite => 7,
            Event::AluOp => 8,
            Event::FpOp => 9,
            Event::BpredAccess => 10,
            Event::ClockCycle => 11,
            Event::CounterTick => 12,
        }
    }
}

/// Per-event activity counts plus ad-hoc energy deposits.
///
/// The ledger separates *counting* (cheap, done every cycle in the timing
/// loop) from *pricing* (done once at the end with a [`PowerModel`]), so a
/// single run can be re-priced at different operating points.
///
/// ```
/// use wattch::{EnergyLedger, Event};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.record(Event::AluOp, 3);
/// ledger.record(Event::AluOp, 2);
/// assert_eq!(ledger.count(Event::AluOp), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    counts: [u64; 13],
    /// Energy recorded directly (e.g. technique-specific transition
    /// energies priced at record time).
    direct: Joules,
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` occurrences of `event`.
    pub fn record(&mut self, event: Event, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Deposits a pre-priced energy amount (used for transition energies
    /// whose price depends on technique state).
    pub fn deposit(&mut self, energy: Joules) {
        self.direct += energy;
    }

    /// The number of recorded occurrences of `event`.
    pub fn count(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }

    /// Directly deposited energy so far.
    pub fn direct(&self) -> Joules {
        self.direct
    }

    /// Total dynamic energy priced with `model` (counted events plus
    /// direct deposits).
    pub fn total_energy(&self, model: &PowerModel) -> Joules {
        Event::ALL
            .iter()
            .map(|&e| {
                #[allow(clippy::cast_precision_loss)]
                // lint: allow(lossy-cast): event counts are exact in f64
                let n = self.count(e) as f64;
                n * model.energy(e)
            })
            .sum::<Joules>()
            + self.direct
    }

    /// Merges another ledger's activity into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.direct += other.direct;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotleakage::{Environment, TechNode};

    fn model() -> PowerModel {
        PowerModel::alpha21264_like(&Environment::new(TechNode::N70, 0.9, 383.15).unwrap())
    }

    #[test]
    fn counts_accumulate() {
        let mut l = EnergyLedger::new();
        l.record(Event::L2Access, 10);
        l.record(Event::L2Access, 5);
        assert_eq!(l.count(Event::L2Access), 15);
        assert_eq!(l.count(Event::MemAccess), 0);
    }

    #[test]
    fn total_energy_is_linear_in_counts() {
        let m = model();
        let mut a = EnergyLedger::new();
        a.record(Event::L1dAccess, 100);
        let mut b = EnergyLedger::new();
        b.record(Event::L1dAccess, 200);
        assert!((b.total_energy(&m) - a.total_energy(&m) * 2.0).get().abs() < 1e-18);
    }

    #[test]
    fn merge_adds_counts_and_deposits() {
        let mut a = EnergyLedger::new();
        a.record(Event::AluOp, 7);
        a.deposit(Joules::new(1e-9));
        let mut b = EnergyLedger::new();
        b.record(Event::AluOp, 3);
        b.deposit(Joules::new(2e-9));
        a.merge(&b);
        assert_eq!(a.count(Event::AluOp), 10);
        assert!((a.direct() - Joules::new(3e-9)).get().abs() < 1e-20);
    }

    #[test]
    fn index_mapping_is_a_bijection() {
        let mut seen = [false; 13];
        for e in Event::ALL {
            let i = e.index();
            assert!(!seen[i], "duplicate index for {e:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_ledger_prices_to_zero() {
        assert_eq!(EnergyLedger::new().total_energy(&model()), Joules::ZERO);
    }
}
