//! Property tests on the dynamic-energy model.

use hotleakage::{Environment, TechNode};
use proptest::prelude::*;
use units::{Joules, Volts};
use wattch::cacti::{self, ArrayGeometry};
use wattch::{EnergyLedger, Event, PowerModel};

fn arb_env() -> impl Strategy<Value = Environment> {
    (0.3f64..1.3, 280.0f64..420.0).prop_filter_map("valid point", |(vdd, t)| {
        Environment::new(TechNode::N70, vdd, t).ok()
    })
}

fn arb_geom() -> impl Strategy<Value = ArrayGeometry> {
    (16usize..8192, 8usize..1024).prop_map(|(rows, cols)| ArrayGeometry {
        rows,
        cols,
        access_bits: cols,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn read_energy_positive_and_finite(env in arb_env(), geom in arb_geom()) {
        let e = cacti::read_energy(&env, &geom);
        prop_assert!(e.is_finite() && e > Joules::ZERO);
    }

    #[test]
    fn energy_monotone_in_rows(env in arb_env(), cols in 32usize..512, rows in 32usize..2048) {
        let small = ArrayGeometry { rows, cols, access_bits: cols };
        let large = ArrayGeometry { rows: rows * 2, cols, access_bits: cols };
        prop_assert!(cacti::read_energy(&env, &large) > cacti::read_energy(&env, &small));
    }

    #[test]
    fn energy_monotone_in_vdd(geom in arb_geom(), v in 0.3f64..1.0) {
        let lo = Environment::new(TechNode::N70, v, 300.0).expect("valid");
        let hi = Environment::new(TechNode::N70, v + 0.2, 300.0).expect("valid");
        prop_assert!(cacti::read_energy(&hi, &geom) > cacti::read_energy(&lo, &geom));
    }

    #[test]
    fn ledger_total_is_additive(
        counts in proptest::collection::vec(0u64..10_000, Event::ALL.len()),
        extra in 0f64..1e-6,
    ) {
        let env = Environment::new(TechNode::N70, 0.9, 383.15).expect("valid");
        let model = PowerModel::alpha21264_like(&env);
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        let mut merged = EnergyLedger::new();
        for (i, &event) in Event::ALL.iter().enumerate() {
            a.record(event, counts[i]);
            b.record(event, counts[Event::ALL.len() - 1 - i]);
            merged.record(event, counts[i] + counts[Event::ALL.len() - 1 - i]);
        }
        a.deposit(Joules::new(extra));
        merged.deposit(Joules::new(extra));
        let sum = (a.total_energy(&model) + b.total_energy(&model)).get();
        let whole = merged.total_energy(&model).get();
        prop_assert!((sum - whole).abs() <= 1e-12 * whole.max(1e-30) + 1e-24);
    }

    #[test]
    fn rail_energy_nonnegative_and_quadratic(dv in 0.0f64..1.2) {
        let env = Environment::new(TechNode::N70, 0.9, 383.15).expect("valid");
        let model = PowerModel::alpha21264_like(&env);
        let e1 = model.line_rail_energy(Volts::new(dv)).get();
        let e2 = model.line_rail_energy(Volts::new(2.0 * dv)).get();
        prop_assert!(e1 >= 0.0);
        prop_assert!((e2 - 4.0 * e1).abs() <= 1e-9 * e2.max(1e-30));
    }
}
