//! Property tests on the workload generators: any benchmark, any seed,
//! structurally valid streams.

use proptest::prelude::*;
use specgen::{Benchmark, SpecTrace};
use uarch::insn::OpClass;
use uarch::TraceSource;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streams_are_structurally_valid(b in arb_benchmark(), seed in 0u64..1000) {
        let mut t = SpecTrace::new(b, seed);
        let mut prev_pc_after_seq = None::<u64>;
        for _ in 0..3000 {
            let op = t.next_op().expect("endless");
            // PCs are word-aligned and inside the code/function regions.
            prop_assert_eq!(op.pc % 4, 0, "pc {:#x} must be word-aligned", op.pc);
            prop_assert!(op.pc >= 0x0040_0000 && op.pc < 0x1000_0000, "pc {:#x}", op.pc);
            if op.class.is_mem() {
                // Data addresses live in the data regions, never in code.
                prop_assert!(op.mem_addr >= 0x1000_0000, "addr {:#x}", op.mem_addr);
            }
            if op.class.is_control() && op.taken {
                prop_assert_eq!(op.target % 4, 0);
            }
            // Sequential ops advance the PC by 4.
            if let Some(prev) = prev_pc_after_seq {
                prop_assert_eq!(op.pc, prev, "sequential flow must advance by 4");
            }
            prev_pc_after_seq = if op.class.is_control() && op.taken {
                Some(op.target)
            } else if op.class == OpClass::Return {
                None
            } else {
                Some(op.pc + 4)
            };
        }
    }

    #[test]
    fn seeds_change_data_not_structure(b in arb_benchmark(), s1 in 0u64..500, s2 in 500u64..1000) {
        let count_mem = |seed: u64| -> usize {
            let mut t = SpecTrace::new(b, seed);
            (0..5000).filter(|_| t.next_op().expect("endless").class.is_mem()).count()
        };
        let m1 = count_mem(s1);
        let m2 = count_mem(s2);
        // Memory-op density is a structural property: stable within a few
        // percent across seeds.
        let diff = (m1 as f64 - m2 as f64).abs() / 5000.0;
        prop_assert!(diff < 0.09, "mem density moved {diff} between seeds");
    }

    #[test]
    fn emitted_counter_tracks_ops(b in arb_benchmark(), n in 1u64..2000) {
        let mut t = SpecTrace::new(b, 1);
        for _ in 0..n {
            t.next_op().expect("endless");
        }
        prop_assert_eq!(t.emitted(), n);
    }
}
