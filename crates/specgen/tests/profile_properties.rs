//! Property tests on the calibrated benchmark profiles: every profile the
//! table can produce must satisfy the generator's preconditions, and the
//! derived quantities must stay physical.

use proptest::prelude::*;
use specgen::{Benchmark, BenchmarkProfile};

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::ALL.to_vec())
}

#[test]
fn every_profile_passes_its_own_validator() {
    for b in Benchmark::ALL {
        b.profile().assert_valid();
    }
}

#[test]
fn memory_regions_partition_the_access_stream() {
    for b in Benchmark::ALL {
        let p = b.profile();
        let explicit = p.stack_frac + p.resident_frac + p.stream_frac + p.chase_frac;
        let total = explicit + p.hot_frac();
        assert!(
            (total - 1.0).abs() < 1e-12,
            "{b}: explicit regions + hot pool must cover all accesses, got {total}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profiles_are_deterministic_and_self_describing(b in arb_benchmark()) {
        let p = b.profile();
        prop_assert_eq!(p.benchmark, b, "profile must name its benchmark");
        prop_assert_eq!(p, b.profile(), "profile lookup must be deterministic");
    }

    #[test]
    fn derived_quantities_stay_physical(b in arb_benchmark()) {
        let p = b.profile();
        prop_assert!(p.mem_frac() > 0.0 && p.mem_frac() < 1.0);
        prop_assert!((0.0..=1.0).contains(&p.hot_frac()));
        let reuse = p.resident_reuse_insts();
        prop_assert!(reuse > 0.0, "{}: reuse interval must be positive", b);
        // Every studied benchmark has a resident set, so the interval is
        // finite — and it is at least the footprint itself (at most one
        // access per instruction touches the region).
        prop_assert!(reuse.is_finite(), "{}", b);
        prop_assert!(reuse >= p.resident_lines as f64, "{}", b);
    }

    #[test]
    fn scaling_the_resident_set_scales_its_reuse_interval(
        b in arb_benchmark(),
        factor in 2usize..17,
    ) {
        let p = b.profile();
        let scaled = BenchmarkProfile {
            resident_lines: p.resident_lines * factor,
            ..p
        };
        let ratio = scaled.resident_reuse_insts() / p.resident_reuse_insts();
        prop_assert!(
            (ratio - factor as f64).abs() < 1e-9,
            "{}: reuse interval must scale linearly with footprint, ratio {ratio}",
            b
        );
    }
}
