//! Per-benchmark statistical profiles.
//!
//! Parameter values are first-principles estimates calibrated to published
//! SPECint2000 characterisations (instruction mixes, 64 KB-L1 miss ratios,
//! branch misprediction rates, IPC on 4-wide out-of-order cores) and to the
//! qualitative per-benchmark behaviour the paper reports (Table 3 best
//! decay intervals; which benchmarks favour gated-V_ss vs drowsy).

use serde::{Deserialize, Serialize};

/// The 11 SPECint2000 benchmarks of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// 176.gcc — compiler; large code + data footprints, phase behaviour,
    /// lines die young (short best decay intervals).
    Gcc,
    /// 164.gzip — compression; sliding-window dictionary reused at long
    /// intervals (long best gated interval, short best drowsy interval).
    Gzip,
    /// 197.parser — dictionary parser; mixed reuse.
    Parser,
    /// 255.vortex — OO database; hot object pool, low miss rate.
    Vortex,
    /// 254.gap — group theory; medium reuse both techniques like alike.
    Gap,
    /// 253.perlbmk — interpreter; hot interpreter tables, low miss rate.
    Perl,
    /// 300.twolf — place & route; pointer-chasing over a medium footprint.
    Twolf,
    /// 256.bzip2 — compression; streaming with block-sorted reuse.
    Bzip2,
    /// 175.vpr — FPGA place & route; like twolf but lighter.
    Vpr,
    /// 181.mcf — network simplex; giant pointer-chase, dead lines, very low
    /// IPC (short best intervals for both techniques).
    Mcf,
    /// 186.crafty — chess; big hash tables reused at long intervals.
    Crafty,
}

impl Benchmark {
    /// All benchmarks in the paper's figure order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Parser,
        Benchmark::Vortex,
        Benchmark::Gap,
        Benchmark::Perl,
        Benchmark::Twolf,
        Benchmark::Bzip2,
        Benchmark::Vpr,
        Benchmark::Mcf,
        Benchmark::Crafty,
    ];

    /// The benchmark's display name (lowercase, as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::Parser => "parser",
            Benchmark::Vortex => "vortex",
            Benchmark::Gap => "gap",
            Benchmark::Perl => "perl",
            Benchmark::Twolf => "twolf",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Vpr => "vpr",
            Benchmark::Mcf => "mcf",
            Benchmark::Crafty => "crafty",
        }
    }

    /// The statistical profile of this benchmark.
    pub fn profile(self) -> BenchmarkProfile {
        profile_for(self)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of one benchmark's generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Which benchmark this profiles.
    pub benchmark: Benchmark,

    // ---- instruction mix (fractions of all ops; remainder is IntAlu) ----
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of conditional branches.
    pub branch_frac: f64,
    /// Fraction of calls (matched by returns).
    pub call_frac: f64,
    /// Fraction of integer multiplies.
    pub mult_frac: f64,
    /// Fraction of integer divides.
    pub div_frac: f64,

    // ---- register dependences (ILP) ----
    /// Probability the first source reads a recent in-flight result.
    pub dep_p1: f64,
    /// Probability the second source reads a recent in-flight result.
    pub dep_p2: f64,
    /// Mean distance (in producing ops) of a dependent read; smaller means
    /// tighter chains and less ILP.
    pub dep_mean_dist: f64,

    // ---- branch behaviour ----
    /// Fraction of branch PCs behaving like loop back-edges.
    pub br_loop_frac: f64,
    /// Fraction of branch PCs following a global periodic pattern
    /// (learnable by the GAg component).
    pub br_pattern_frac: f64,
    /// Taken bias of loop branches (the rest of branch PCs are random with
    /// this probability of taken = 0.5).
    pub br_loop_bias: f64,

    // ---- memory regions (fractions of memory accesses; must sum ≤ 1,
    //      remainder goes to the hot pool) ----
    /// Stack accesses (a handful of lines, constantly hot).
    pub stack_frac: f64,
    /// Resident-set accesses: lines reused cyclically at medium/long
    /// intervals — the decay-interval-sensitive traffic.
    pub resident_frac: f64,
    /// Streaming accesses: sequential lines used `stream_burst` times then
    /// dead.
    pub stream_frac: f64,
    /// Pointer-chase accesses: uniform over `chase_lines` lines.
    pub chase_frac: f64,

    /// Stack footprint in cache lines.
    pub stack_lines: usize,
    /// Hot-pool footprint in cache lines.
    pub hot_lines: usize,
    /// Resident-set footprint in cache lines.
    pub resident_lines: usize,
    /// Accesses to each streaming line before it dies.
    pub stream_burst: u32,
    /// Pointer-chase footprint in cache lines.
    pub chase_lines: usize,
    /// Whether chase loads are serialised through a register (mcf-style
    /// address-dependent chains that destroy ILP).
    pub chase_dependent: bool,

    // ---- code footprint ----
    /// Number of distinct basic-block start addresses (controls I-cache
    /// pressure).
    pub code_blocks: usize,
}

impl BenchmarkProfile {
    /// Fraction of all ops that access memory.
    pub fn mem_frac(&self) -> f64 {
        self.load_frac + self.store_frac
    }

    /// Fraction of memory accesses hitting the hot pool (the remainder
    /// after the explicit regions).
    pub fn hot_frac(&self) -> f64 {
        (1.0 - self.stack_frac - self.resident_frac - self.stream_frac - self.chase_frac).max(0.0)
    }

    /// Approximate reuse interval of a resident-set line, in instructions:
    /// the line count divided by the per-instruction access rate into the
    /// region. This is the knob that positions each benchmark's best decay
    /// interval (Table 3).
    pub fn resident_reuse_insts(&self) -> f64 {
        let rate = self.resident_frac * self.mem_frac();
        if rate <= 0.0 {
            f64::INFINITY
        } else {
            self.resident_lines as f64 / rate
        }
    }

    /// Sanity-checks that all fractions are in range.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or the mixes exceed 1.
    pub fn assert_valid(&self) {
        let fracs = [
            self.load_frac,
            self.store_frac,
            self.branch_frac,
            self.call_frac,
            self.mult_frac,
            self.div_frac,
            self.dep_p1,
            self.dep_p2,
            self.br_loop_frac,
            self.br_pattern_frac,
            self.br_loop_bias,
            self.stack_frac,
            self.resident_frac,
            self.stream_frac,
            self.chase_frac,
        ];
        for f in fracs {
            assert!(
                (0.0..=1.0).contains(&f),
                "fraction {f} out of range in {}",
                self.benchmark
            );
        }
        let mix = self.load_frac
            + self.store_frac
            + self.branch_frac
            + self.call_frac * 2.0
            + self.mult_frac
            + self.div_frac;
        assert!(
            mix <= 1.0,
            "instruction mix exceeds 1.0 in {}",
            self.benchmark
        );
        let mem = self.stack_frac + self.resident_frac + self.stream_frac + self.chase_frac;
        assert!(mem <= 1.0, "memory mix exceeds 1.0 in {}", self.benchmark);
        assert!(self.stack_lines > 0 && self.hot_lines > 0 && self.code_blocks > 0);
    }
}

/// The calibrated profile table.
fn profile_for(b: Benchmark) -> BenchmarkProfile {
    // A fully-populated default the entries below override; values are the
    // "generic SPECint" midpoint.
    let base = BenchmarkProfile {
        benchmark: b,
        load_frac: 0.24,
        store_frac: 0.11,
        branch_frac: 0.14,
        call_frac: 0.01,
        mult_frac: 0.01,
        div_frac: 0.001,
        dep_p1: 0.65,
        dep_p2: 0.30,
        dep_mean_dist: 6.0,
        br_loop_frac: 0.65,
        br_pattern_frac: 0.20,
        br_loop_bias: 0.94,
        stack_frac: 0.30,
        resident_frac: 0.15,
        stream_frac: 0.20,
        chase_frac: 0.05,
        stack_lines: 8,
        hot_lines: 48,
        resident_lines: 320,
        stream_burst: 8,
        chase_lines: 1 << 15,
        chase_dependent: false,
        code_blocks: 600,
    };
    match b {
        // Compiler: big code, lines die young (heavy streaming over IR),
        // mediocre branch prediction. Short best intervals.
        Benchmark::Gcc => BenchmarkProfile {
            load_frac: 0.26,
            store_frac: 0.13,
            branch_frac: 0.16,
            br_loop_frac: 0.62,
            br_pattern_frac: 0.23,
            stack_frac: 0.26,
            resident_frac: 0.10,
            stream_frac: 0.30,
            chase_frac: 0.02,
            resident_lines: 128,
            stream_burst: 16,
            chase_lines: 1 << 14,
            code_blocks: 2600,
            ..base
        },
        // Compression: sliding-window dictionary — a large resident set
        // reused at long intervals. Gated wants a long interval (64 k),
        // drowsy a short one.
        Benchmark::Gzip => BenchmarkProfile {
            load_frac: 0.22,
            store_frac: 0.09,
            branch_frac: 0.13,
            br_loop_frac: 0.70,
            stack_frac: 0.24,
            resident_frac: 0.06,
            stream_frac: 0.30,
            chase_frac: 0.0,
            resident_lines: 640,
            stream_burst: 12,
            code_blocks: 250,
            ..base
        },
        Benchmark::Parser => BenchmarkProfile {
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.15,
            br_loop_frac: 0.64,
            br_pattern_frac: 0.24,
            stack_frac: 0.30,
            resident_frac: 0.10,
            stream_frac: 0.18,
            chase_frac: 0.015,
            resident_lines: 288,
            stream_burst: 10,
            chase_lines: 1 << 13,
            code_blocks: 700,
            ..base
        },
        // OO database: hot object pool, very low miss rate, high ILP.
        Benchmark::Vortex => BenchmarkProfile {
            load_frac: 0.27,
            store_frac: 0.14,
            branch_frac: 0.13,
            call_frac: 0.02,
            dep_p1: 0.55,
            dep_mean_dist: 8.0,
            br_loop_bias: 0.96,
            stack_frac: 0.32,
            resident_frac: 0.10,
            stream_frac: 0.10,
            chase_frac: 0.005,
            hot_lines: 96,
            resident_lines: 224,
            stream_burst: 10,
            code_blocks: 1200,
            ..base
        },
        // Group theory: medium everything; both techniques pick 16 k.
        Benchmark::Gap => BenchmarkProfile {
            load_frac: 0.24,
            store_frac: 0.10,
            branch_frac: 0.12,
            stack_frac: 0.28,
            resident_frac: 0.055,
            stream_frac: 0.18,
            chase_frac: 0.005,
            resident_lines: 448,
            stream_burst: 16,
            code_blocks: 500,
            ..base
        },
        // Interpreter: hot dispatch tables, tiny data misses, good ILP.
        Benchmark::Perl => BenchmarkProfile {
            load_frac: 0.26,
            store_frac: 0.13,
            branch_frac: 0.15,
            call_frac: 0.02,
            dep_p1: 0.60,
            br_loop_bias: 0.95,
            stack_frac: 0.34,
            resident_frac: 0.09,
            stream_frac: 0.08,
            chase_frac: 0.003,
            stream_burst: 10,
            hot_lines: 80,
            resident_lines: 160,
            code_blocks: 900,
            ..base
        },
        // Place & route: pointer-chasing over a medium footprint, poor
        // prediction, low-ish IPC.
        Benchmark::Twolf => BenchmarkProfile {
            load_frac: 0.25,
            store_frac: 0.09,
            branch_frac: 0.15,
            br_loop_frac: 0.55,
            br_pattern_frac: 0.22,
            dep_p1: 0.70,
            dep_mean_dist: 4.0,
            stack_frac: 0.26,
            resident_frac: 0.12,
            stream_frac: 0.08,
            chase_frac: 0.12,
            resident_lines: 192,
            chase_lines: 2 << 10, // ~2 K lines: partially cacheable
            code_blocks: 450,
            ..base
        },
        // Compression: streaming plus block-local reuse.
        Benchmark::Bzip2 => BenchmarkProfile {
            load_frac: 0.23,
            store_frac: 0.10,
            branch_frac: 0.13,
            br_loop_frac: 0.68,
            stack_frac: 0.22,
            resident_frac: 0.07,
            stream_frac: 0.34,
            chase_frac: 0.01,
            resident_lines: 384,
            stream_burst: 16,
            chase_lines: 1 << 13,
            code_blocks: 220,
            ..base
        },
        // Like twolf but lighter chase and better prediction.
        Benchmark::Vpr => BenchmarkProfile {
            load_frac: 0.26,
            store_frac: 0.10,
            branch_frac: 0.14,
            br_loop_frac: 0.60,
            br_pattern_frac: 0.24,
            dep_p1: 0.68,
            dep_mean_dist: 4.5,
            stack_frac: 0.26,
            resident_frac: 0.11,
            stream_frac: 0.10,
            chase_frac: 0.07,
            stream_burst: 16,
            resident_lines: 256,
            chase_lines: 2 << 10,
            code_blocks: 400,
            ..base
        },
        // Network simplex: giant serialised pointer-chase; lines are dead
        // on arrival, IPC is dismal, decay can be aggressive (1 k / 2 k).
        Benchmark::Mcf => BenchmarkProfile {
            load_frac: 0.30,
            store_frac: 0.09,
            branch_frac: 0.12,
            dep_p1: 0.75,
            dep_mean_dist: 3.0,
            br_loop_frac: 0.62,
            br_pattern_frac: 0.26,
            stack_frac: 0.22,
            resident_frac: 0.04,
            stream_frac: 0.12,
            chase_frac: 0.22,
            stream_burst: 12,
            resident_lines: 96,
            chase_lines: 1 << 17, // 128 K lines: 8 MB, blows both caches
            chase_dependent: true,
            code_blocks: 150,
            ..base
        },
        // Chess: big transposition tables reused at long intervals; very
        // good prediction, high ILP, low miss rate. Gated wants 32 k.
        Benchmark::Crafty => BenchmarkProfile {
            load_frac: 0.27,
            store_frac: 0.08,
            branch_frac: 0.13,
            dep_p1: 0.55,
            dep_mean_dist: 8.0,
            br_loop_bias: 0.96,
            br_pattern_frac: 0.25,
            stack_frac: 0.30,
            resident_frac: 0.05,
            stream_frac: 0.06,
            chase_frac: 0.02,
            stream_burst: 10,
            hot_lines: 64,
            resident_lines: 512,
            chase_lines: 1 << 12,
            code_blocks: 800,
            ..base
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for b in Benchmark::ALL {
            b.profile().assert_valid();
        }
    }

    #[test]
    fn names_match_paper_figures() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            [
                "gcc", "gzip", "parser", "vortex", "gap", "perl", "twolf", "bzip2", "vpr", "mcf",
                "crafty"
            ]
        );
    }

    #[test]
    fn reuse_interval_ordering_matches_table3() {
        // Table 3: gcc and mcf pick the shortest gated intervals, gzip and
        // crafty the longest — resident reuse intervals must order the same
        // way.
        let reuse = |b: Benchmark| b.profile().resident_reuse_insts();
        assert!(reuse(Benchmark::Gcc) < reuse(Benchmark::Gzip));
        assert!(reuse(Benchmark::Mcf) < reuse(Benchmark::Crafty));
        assert!(reuse(Benchmark::Gcc) < reuse(Benchmark::Crafty));
    }

    #[test]
    fn mcf_is_the_pathological_one() {
        let mcf = Benchmark::Mcf.profile();
        assert!(mcf.chase_dependent);
        assert!(mcf.chase_frac > 0.15, "mcf stays chase-dominated");
        for b in Benchmark::ALL {
            if b != Benchmark::Mcf {
                assert!(b.profile().chase_lines < mcf.chase_lines);
            }
        }
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Benchmark::Gcc.to_string(), "gcc");
    }
}
