//! # specgen
//!
//! Deterministic statistical workload generators standing in for the 11
//! SPECint2000 benchmarks of the study (gcc, gzip, parser, vortex, gap,
//! perl, twolf, bzip2, vpr, mcf, crafty).
//!
//! ## Why synthetic workloads are a faithful substitution
//!
//! The paper runs Alpha binaries of SPECint2000 under SimpleScalar. Neither
//! the binaries, the reference inputs, nor an Alpha functional simulator is
//! available here, so each benchmark is replaced by a *statistical
//! generator* (documented in DESIGN.md). The leakage-control comparison is
//! sensitive to exactly three workload properties, all of which the
//! generators parameterise explicitly:
//!
//! 1. **Line inter-access ("decay") interval structure** — how long cache
//!    lines sit idle between reuses determines the turnoff ratio, the
//!    induced-miss rate, and each benchmark's best decay interval
//!    (paper Table 3). Each profile mixes five address streams with very
//!    different reuse behaviour: a tiny hot *stack*, a *hot pool* of
//!    frequently-reused lines, a *resident set* reused at medium-to-long
//!    intervals (the decay-interval-sensitive component), dead-on-arrival
//!    *streaming* data, and uniform *pointer-chase* traffic.
//! 2. **Miss ratios / working-set size** — set by the region footprints.
//! 3. **Available ILP** — set by register-dependence probability/distance,
//!    branch predictability, and (for mcf-like codes) address-dependent
//!    serialised chase loads. ILP controls how much induced-miss latency
//!    the out-of-order window hides (paper §5.1 reason 4).
//!
//! Everything is driven by a seeded ChaCha8 PRNG: the same
//! benchmark + seed always produces the same trace.
//!
//! ```
//! use specgen::{Benchmark, SpecTrace};
//! use uarch::TraceSource;
//!
//! let mut trace = SpecTrace::new(Benchmark::Gcc, 42);
//! let op = trace.next_op().expect("generators are endless");
//! assert!(op.pc > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod generator;
pub mod profile;

pub use arena::{replay_trace, ReplayTrace};
pub use generator::SpecTrace;
pub use profile::{Benchmark, BenchmarkProfile};
