//! The trace generator driven by a [`BenchmarkProfile`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use uarch::insn::{MicroOp, OpClass};
use uarch::trace::TraceSource;

use crate::profile::{Benchmark, BenchmarkProfile};

/// Cache-line size assumed by the address streams, bytes.
pub const LINE: u64 = 64;

// Region base addresses (kept far apart so regions never alias).
const STACK_BASE: u64 = 0x7F00_0000;
const HOT_BASE: u64 = 0x1000_0000;
const RESIDENT_BASE: u64 = 0x2000_0000;
const STREAM_BASE: u64 = 0x3000_0000;
const CHASE_BASE: u64 = 0x4000_0000;
const CODE_BASE: u64 = 0x0040_0000;
const FUNC_BASE: u64 = 0x0080_0000;

/// An endless, deterministic instruction stream for one benchmark.
///
/// `SpecTrace` implements [`TraceSource`]; feed it to
/// [`uarch::Core::run`] with the desired instruction budget.
#[derive(Debug, Clone)]
pub struct SpecTrace {
    profile: BenchmarkProfile,
    rng: ChaCha8Rng,
    pc: u64,
    /// Destination registers of recent producers (ring, newest last).
    recent_dests: Vec<u8>,
    next_dest: u8,
    resident_cursor: usize,
    stream_line: u64,
    stream_left: u32,
    /// Return-address stack mirror (the generator emits matching returns).
    call_stack: Vec<u64>,
    /// Outcome of the most recent conditional branch (pattern branches
    /// copy it, which a global-history predictor learns exactly).
    last_taken: bool,
    /// Dest register of the last chase load (serialisation for mcf).
    chase_dest: Option<u8>,
    ops_emitted: u64,
}

impl SpecTrace {
    /// A generator for `benchmark` seeded with `seed`.
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        Self::with_profile(benchmark.profile(), seed)
    }

    /// A generator for an explicit (possibly customised) profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::assert_valid`].
    pub fn with_profile(profile: BenchmarkProfile, seed: u64) -> Self {
        profile.assert_valid();
        SpecTrace {
            profile,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            pc: CODE_BASE,
            recent_dests: Vec::with_capacity(32),
            next_dest: 1,
            resident_cursor: 0,
            stream_line: 0,
            stream_left: 0,
            call_stack: Vec::with_capacity(32),
            last_taken: false,
            chase_dest: None,
            ops_emitted: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.ops_emitted
    }

    fn pick_dest(&mut self) -> u8 {
        // Rotate through integer registers 1..=24, leaving a few registers
        // as perennially-ready sources.
        let d = self.next_dest;
        self.next_dest = if self.next_dest >= 24 {
            1
        } else {
            self.next_dest + 1
        };
        if self.recent_dests.len() == 32 {
            self.recent_dests.remove(0);
        }
        self.recent_dests.push(d);
        d
    }

    fn pick_src(&mut self, prob: f64) -> Option<u8> {
        if self.recent_dests.is_empty() || !self.rng.gen_bool(prob) {
            // An old, long-ready register.
            return Some(25 + (self.rng.gen::<u8>() % 6));
        }
        // Geometric-ish distance into the recent producers.
        let mean = self.profile.dep_mean_dist.max(1.0);
        let p = 1.0 / mean;
        let mut dist = 0usize;
        while dist + 1 < self.recent_dests.len() && !self.rng.gen_bool(p) {
            dist += 1;
        }
        let idx = self.recent_dests.len() - 1 - dist;
        Some(self.recent_dests[idx])
    }

    /// Picks the effective address of a memory access (and whether it is a
    /// serialised chase access).
    fn pick_addr(&mut self) -> (u64, bool) {
        let p = &self.profile;
        let r: f64 = self.rng.gen();
        let offset = (self.rng.gen::<u64>() % (LINE / 8)) * 8;
        if r < p.stack_frac {
            let line = self.rng.gen::<u64>() % p.stack_lines as u64;
            (STACK_BASE + line * LINE + offset, false)
        } else if r < p.stack_frac + p.resident_frac {
            // Cyclic sweep: every resident line is reused once per full
            // rotation, giving a well-defined reuse interval.
            let line = self.resident_cursor as u64;
            self.resident_cursor = (self.resident_cursor + 1) % p.resident_lines.max(1);
            (RESIDENT_BASE + line * LINE + offset, false)
        } else if r < p.stack_frac + p.resident_frac + p.stream_frac {
            if self.stream_left == 0 {
                self.stream_line += 1;
                self.stream_left = p.stream_burst;
            }
            self.stream_left -= 1;
            // Wrap the stream region at 1 GB to keep addresses bounded (the
            // wrap period is weeks of simulated time; lines are still dead).
            let line = self.stream_line % (1 << 24);
            (STREAM_BASE + line * LINE + offset, false)
        } else if r < p.stack_frac + p.resident_frac + p.stream_frac + p.chase_frac {
            let line = self.rng.gen::<u64>() % p.chase_lines.max(1) as u64;
            (CHASE_BASE + line * LINE + offset, p.chase_dependent)
        } else {
            // Hot pool with a skewed (front-loaded) distribution.
            let n = p.hot_lines as u64;
            let a = self.rng.gen::<u64>() % n;
            let b = self.rng.gen::<u64>() % n;
            (HOT_BASE + a.min(b) * LINE + offset, false)
        }
    }

    fn emit_branch(&mut self) -> MicroOp {
        let p = &self.profile;
        let pc = self.pc;
        // Branch behaviour class is a stable function of the PC so the
        // predictor tables can learn each branch.
        let h = pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        let class_sel = (h % 1000) as f64 / 1000.0;
        let taken = if class_sel < p.br_loop_frac {
            self.rng.gen_bool(p.br_loop_bias)
        } else if class_sel < p.br_loop_frac + p.br_pattern_frac {
            // History-correlated branch: repeats the previous branch's
            // outcome. The GAg component sees the outcome as a pure
            // function of its history index and learns it exactly — the
            // behaviour hybrid predictors exist to capture.
            self.last_taken
        } else {
            self.rng.gen_bool(0.5)
        };
        // Stable per-PC target keeps the BTB effective. Block popularity is
        // two-tier: 90 % of jump sites target one of a few dozen hot blocks
        // (real programs spend most dynamic branches in a few hot loops —
        // that concentration is what lets 4 K predictor tables and a 1 K
        // BTB work at all); the rest scatter over the full code footprint.
        let n = self.profile.code_blocks as u64;
        let hot_set = n.min(24);
        let h2 = pc.wrapping_mul(0xA24B_AED4_963E_E407) >> 17;
        let block = if h % 10 < 9 { h2 % hot_set } else { h2 % n };
        // Entry offsets vary per branch site so the visited-PC population
        // samples the whole hash space (keeps the realised instruction mix
        // on target) while targets stay stable per PC for the BTB.
        let entry = ((h2 >> 11) % 32) * 4;
        let target = CODE_BASE + block * 256 + entry;
        let op = MicroOp::branch(pc, taken, target);
        self.last_taken = taken;
        self.pc = if taken { target } else { pc + 4 };
        op
    }

    fn emit_call(&mut self) -> MicroOp {
        let pc = self.pc;
        let h = pc.wrapping_mul(0xD134_2543_DE82_EF95) >> 40;
        let target = FUNC_BASE + (h % 256) * 512;
        self.call_stack.push(pc + 4);
        let op = MicroOp {
            pc,
            class: OpClass::Call,
            dest: None,
            src1: None,
            src2: None,
            mem_addr: 0,
            taken: true,
            target,
        };
        self.pc = target;
        op
    }

    fn emit_return(&mut self) -> MicroOp {
        let pc = self.pc;
        let target = self.call_stack.pop().unwrap_or(CODE_BASE);
        let op = MicroOp {
            pc,
            class: OpClass::Return,
            dest: None,
            src1: None,
            src2: None,
            mem_addr: 0,
            taken: true,
            target,
        };
        self.pc = target;
        op
    }
}

/// Maps a PC to a uniform value in `[0, 1)` — the "static code" hash: the
/// instruction class at a given address never changes, so branch sites,
/// load sites, etc. recur at stable PCs and the predictor tables, BTB and
/// caches see realistic locality.
fn pc_hash01(pc: u64) -> f64 {
    let h = (pc >> 2).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    let h = (h ^ (h >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    ((h ^ (h >> 33)) >> 11) as f64 / (1u64 << 53) as f64
}

impl TraceSource for SpecTrace {
    fn next_op(&mut self) -> Option<MicroOp> {
        self.ops_emitted += 1;
        let p = self.profile;
        let pc = self.pc;
        // The class of the instruction *at this address* is fixed (static
        // code); only outcomes, operands and data addresses are dynamic.
        let r = pc_hash01(pc);

        // Pending returns fire with probability growing in call depth,
        // keeping calls and returns balanced without lookahead.
        if !self.call_stack.is_empty() {
            let p_ret = (p.call_frac * self.call_stack.len() as f64).min(1.0);
            if self.rng.gen_bool(p_ret) {
                return Some(self.emit_return());
            }
        }

        let op = if r < p.load_frac {
            let (addr, serialised) = self.pick_addr();
            let dest = self.pick_dest();
            let src1 = if serialised {
                self.chase_dest
            } else {
                self.pick_src(p.dep_p1 * 0.5)
            };
            if serialised {
                self.chase_dest = Some(dest);
            }
            self.pc += 4;
            MicroOp {
                src1,
                ..MicroOp::load(pc, dest, addr)
            }
        } else if r < p.load_frac + p.store_frac {
            let (addr, _) = self.pick_addr();
            let src = self.pick_src(p.dep_p1).unwrap_or(1);
            self.pc += 4;
            MicroOp::store(pc, src, addr)
        } else if r < p.load_frac + p.store_frac + p.branch_frac {
            self.emit_branch()
        } else if r < p.load_frac + p.store_frac + p.branch_frac + p.call_frac {
            self.emit_call()
        } else {
            let class = {
                let q: f64 = self.rng.gen();
                if q < p.div_frac {
                    OpClass::IntDiv
                } else if q < p.div_frac + p.mult_frac {
                    OpClass::IntMult
                } else {
                    OpClass::IntAlu
                }
            };
            let dest = self.pick_dest();
            let src1 = self.pick_src(p.dep_p1);
            let src2 = if self.rng.gen_bool(p.dep_p2) {
                self.pick_src(0.9)
            } else {
                None
            };
            self.pc += 4;
            MicroOp {
                pc,
                class,
                dest: Some(dest),
                src1,
                src2,
                mem_addr: 0,
                taken: false,
                target: 0,
            }
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect(b: Benchmark, seed: u64, n: usize) -> Vec<MicroOp> {
        let mut t = SpecTrace::new(b, seed);
        (0..n).map(|_| t.next_op().expect("endless")).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = collect(Benchmark::Gcc, 7, 5000);
        let b = collect(Benchmark::Gcc, 7, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect(Benchmark::Gcc, 7, 500);
        let b = collect(Benchmark::Gcc, 8, 500);
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        for b in [Benchmark::Gcc, Benchmark::Mcf, Benchmark::Perl] {
            let p = b.profile();
            let ops = collect(b, 1, 60_000);
            let loads = ops.iter().filter(|o| o.class == OpClass::Load).count() as f64;
            let stores = ops.iter().filter(|o| o.class == OpClass::Store).count() as f64;
            let branches = ops.iter().filter(|o| o.class == OpClass::Branch).count() as f64;
            let n = ops.len() as f64;
            // Hot-block popularity skew means the visited-PC population is
            // a weighted sample of the class hash, so realised fractions
            // track the profile within a few points, not exactly.
            assert!(
                (loads / n - p.load_frac).abs() < 0.06,
                "{b}: load frac {}",
                loads / n
            );
            assert!(
                (stores / n - p.store_frac).abs() < 0.06,
                "{b}: store frac {}",
                stores / n
            );
            // Dynamic branch frequency is emergent (run lengths end at
            // taken branches, weighting hot entry PCs), so allow more slack.
            assert!(
                (branches / n - p.branch_frac).abs() < 0.09,
                "{b}: branch frac {}",
                branches / n
            );
        }
    }

    #[test]
    fn memory_footprints_differ_by_benchmark() {
        let lines = |b: Benchmark| -> usize {
            collect(b, 3, 80_000)
                .iter()
                .filter(|o| o.class.is_mem())
                .map(|o| o.mem_addr / LINE)
                .collect::<HashSet<_>>()
                .len()
        };
        let mcf = lines(Benchmark::Mcf);
        let perl = lines(Benchmark::Perl);
        assert!(
            mcf > 4 * perl,
            "mcf ({mcf} lines) must dwarf perl ({perl} lines) in footprint"
        );
    }

    #[test]
    fn calls_and_returns_balance() {
        let ops = collect(Benchmark::Vortex, 9, 100_000);
        let calls = ops.iter().filter(|o| o.class == OpClass::Call).count() as i64;
        let rets = ops.iter().filter(|o| o.class == OpClass::Return).count() as i64;
        assert!(
            (calls - rets).abs() < calls / 2 + 20,
            "calls {calls} vs returns {rets}"
        );
    }

    #[test]
    fn branch_targets_stable_per_pc() {
        let ops = collect(Benchmark::Gzip, 11, 200_000);
        let mut targets: std::collections::HashMap<u64, u64> = Default::default();
        for o in ops.iter().filter(|o| o.class == OpClass::Branch && o.taken) {
            if let Some(&t) = targets.get(&o.pc) {
                assert_eq!(
                    t, o.target,
                    "pc {:x} must always branch to the same target",
                    o.pc
                );
            } else {
                targets.insert(o.pc, o.target);
            }
        }
        assert!(targets.len() > 10, "should see many distinct branch sites");
    }

    #[test]
    fn resident_region_reuses_cyclically() {
        // Consecutive resident accesses walk the pool; the same line must
        // reappear after one full rotation.
        let p = Benchmark::Gzip.profile();
        let ops = collect(Benchmark::Gzip, 13, 400_000);
        let resident: Vec<u64> = ops
            .iter()
            .filter(|o| o.class.is_mem() && (RESIDENT_BASE..STREAM_BASE).contains(&o.mem_addr))
            .map(|o| (o.mem_addr - RESIDENT_BASE) / LINE)
            .collect();
        assert!(
            resident.len() > 2 * p.resident_lines,
            "need at least two rotations"
        );
        // The first pool-size accesses cover distinct lines.
        let first: HashSet<u64> = resident[..p.resident_lines].iter().copied().collect();
        assert_eq!(
            first.len(),
            p.resident_lines,
            "one rotation touches every line once"
        );
    }

    #[test]
    fn streams_never_revisit_lines() {
        let ops = collect(Benchmark::Bzip2, 17, 100_000);
        let stream: Vec<u64> = ops
            .iter()
            .filter(|o| o.class.is_mem() && (STREAM_BASE..CHASE_BASE).contains(&o.mem_addr))
            .map(|o| (o.mem_addr - STREAM_BASE) / LINE)
            .collect();
        // Monotone non-decreasing line numbers: once a line is passed it is
        // dead.
        for w in stream.windows(2) {
            assert!(w[1] >= w[0], "stream must advance monotonically");
        }
    }

    #[test]
    fn mcf_chase_loads_are_serialised() {
        let ops = collect(Benchmark::Mcf, 19, 50_000);
        let mut prev_dest: Option<u8> = None;
        let mut serial = 0;
        let mut total = 0;
        for o in ops
            .iter()
            .filter(|o| o.class == OpClass::Load && (CHASE_BASE..STACK_BASE).contains(&o.mem_addr))
        {
            total += 1;
            if let (Some(pd), Some(s1)) = (prev_dest, o.src1) {
                if s1 == pd {
                    serial += 1;
                }
            }
            prev_dest = o.dest;
        }
        assert!(total > 1000, "mcf must chase a lot, got {total}");
        assert!(
            serial as f64 / total as f64 > 0.8,
            "chase loads must chain through registers: {serial}/{total}"
        );
    }

    #[test]
    fn invalid_profile_rejected() {
        let mut p = Benchmark::Gcc.profile();
        p.load_frac = 1.5;
        let result = std::panic::catch_unwind(|| SpecTrace::with_profile(p, 0));
        assert!(result.is_err());
    }
}
