//! Process-wide memoization of generated instruction streams.
//!
//! A [`SpecTrace`] is a pure function of `(benchmark, seed)`, and a study
//! replays the identical stream once per technique/interval point: the
//! baseline, drowsy and gated runs of one benchmark each regenerate the
//! same instructions from scratch. Generation costs on the order of
//! 100 ns per instruction — comparable to the whole rest of the timing
//! model — so the engines replay each stream from a shared in-memory
//! buffer instead: generate once per `(benchmark, seed)`, replay from a
//! flat [`MicroOp`] array everywhere else.
//!
//! [`replay_trace`] is bit-identical to driving a fresh [`SpecTrace`]:
//! the buffer holds exactly the generator's output, and a reader that
//! runs past the buffered prefix (a caller under-declared `insts`)
//! transparently fast-forwards a live generator and keeps streaming.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use uarch::insn::MicroOp;
use uarch::trace::TraceSource;

use crate::{Benchmark, SpecTrace};

/// Longest stream the arena buffers, in ops (40 B each: 2 M ops ≈ 80 MB
/// per entry at worst). Longer requests are generated but not grown
/// further; the reader streams live past the cap, so results never
/// change — only the sharing does.
const MAX_MEMO_OPS: u64 = 2_000_000;

/// One benchmark's buffered stream. The per-slot lock serialises
/// generation of the *same* stream (the second requester waits and then
/// shares, rather than regenerating) while distinct benchmarks generate
/// in parallel.
struct Slot {
    ops: Mutex<Arc<Vec<MicroOp>>>,
}

type ArenaMap = HashMap<(Benchmark, u64), Arc<Slot>>;

static ARENA: OnceLock<Mutex<ArenaMap>> = OnceLock::new();

fn slot(benchmark: Benchmark, seed: u64) -> Arc<Slot> {
    let arena = ARENA.get_or_init(Default::default);
    let mut map = arena
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry((benchmark, seed)).or_insert_with(|| {
        Arc::new(Slot {
            ops: Mutex::new(Arc::new(Vec::new())),
        })
    }))
}

/// A shared replay of the deterministic `(benchmark, seed)` stream,
/// ready to serve at least `insts` instructions from memory.
///
/// # Panics
///
/// Panics if the benchmark's profile fails validation, like
/// [`SpecTrace::new`].
pub fn replay_trace(benchmark: Benchmark, seed: u64, insts: u64) -> ReplayTrace {
    let want = insts.min(MAX_MEMO_OPS) as usize;
    let slot = slot(benchmark, seed);
    let mut ops = slot
        .ops
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if ops.len() < want {
        // Regenerate from scratch rather than keeping generator state
        // around: generation is O(n) either way and this keeps the slot
        // a plain immutable buffer.
        let mut gen = SpecTrace::new(benchmark, seed);
        let mut buf = Vec::with_capacity(want);
        for _ in 0..want {
            // lint: allow(unwrap): SpecTrace::next_op never returns None
            buf.push(gen.next_op().expect("SpecTrace is endless"));
        }
        *ops = Arc::new(buf);
    }
    let ops = Arc::clone(&ops);
    ReplayTrace {
        benchmark,
        seed,
        ops,
        cursor: 0,
        tail: None,
    }
}

/// A [`TraceSource`] replaying a buffered stream, falling back to live
/// generation past the buffered prefix. Bit-identical to a fresh
/// [`SpecTrace`] over any number of reads.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    benchmark: Benchmark,
    seed: u64,
    ops: Arc<Vec<MicroOp>>,
    cursor: usize,
    /// Live continuation, created on first read past the buffer.
    tail: Option<Box<SpecTrace>>,
}

impl TraceSource for ReplayTrace {
    #[inline]
    fn next_op(&mut self) -> Option<MicroOp> {
        if let Some(&op) = self.ops.get(self.cursor) {
            self.cursor += 1;
            return Some(op);
        }
        if self.tail.is_none() {
            // Fast-forward a fresh generator over the replayed prefix so
            // the continuation picks up the exact stream state.
            let mut gen = SpecTrace::new(self.benchmark, self.seed);
            for _ in 0..self.ops.len() {
                gen.next_op();
            }
            self.tail = Some(Box::new(gen));
        }
        self.tail.as_mut().and_then(|g| g.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_live_generation() {
        let mut live = SpecTrace::new(Benchmark::Gcc, 77);
        let mut replay = replay_trace(Benchmark::Gcc, 77, 5_000);
        for _ in 0..5_000 {
            assert_eq!(live.next_op(), replay.next_op());
        }
    }

    #[test]
    fn reading_past_the_buffer_continues_the_stream() {
        let mut live = SpecTrace::new(Benchmark::Mcf, 5);
        // Deliberately under-declare: the reader must stream past 100.
        let mut replay = replay_trace(Benchmark::Mcf, 5, 100);
        for i in 0..3_000 {
            assert_eq!(live.next_op(), replay.next_op(), "op {i}");
        }
    }

    #[test]
    fn second_replay_shares_the_buffer() {
        let a = replay_trace(Benchmark::Gzip, 9, 1_000);
        let b = replay_trace(Benchmark::Gzip, 9, 600);
        assert!(Arc::ptr_eq(&a.ops, &b.ops), "same stream, same buffer");
    }

    #[test]
    fn longer_request_regrows_the_buffer() {
        let short = replay_trace(Benchmark::Vortex, 3, 200);
        let long = replay_trace(Benchmark::Vortex, 3, 2_000);
        assert!(long.ops.len() >= 2_000);
        // The regrown buffer still starts with the identical prefix.
        assert_eq!(&long.ops[..200], &short.ops[..]);
    }
}
