//! Zero-cost dimensional newtypes for the leakage study.
//!
//! Every quantity the energy comparison depends on — cycle counts, joules,
//! watts, volts, kelvin — gets a `#[repr(transparent)]` wrapper that only
//! implements the *physically meaningful* operations:
//!
//! - [`Watts`] `*` [`Seconds`] → [`Joules`] (and commuted)
//! - [`Joules`] `/` [`Seconds`] → [`Watts`], [`Joules`] `/` [`Watts`] → [`Seconds`]
//! - [`Cycles`] → [`Seconds`] only via the named conversion
//!   [`Cycles::seconds_at`] (a clock frequency is required — there is *no*
//!   `Joules / Cycles` and no implicit `cycles as f64`)
//! - [`Volts`] `*` [`Volts`] → [`VoltsSquared`], [`Farads`] `*`
//!   [`VoltsSquared`] → [`Joules`] (the CACTI `C·V²` decomposition)
//! - [`PerCycle`] `*` [`Cycles`] → dimensionless event count
//!
//! Same-dimension division yields a dimensionless `f64` ratio, so
//! percentages and normalized comparisons stay ordinary floats. Anything
//! else — adding joules to cycles, multiplying watts by watts — is a
//! *compile error*, which is the point: the class of unit-mixing bugs that
//! PR 2's runtime conservation audit can only catch statistically now fails
//! `cargo build`. The `unit-bug` feature gates a deliberate violation that
//! CI builds to prove the wall holds.
//!
//! All wrappers are `Copy`, `#[repr(transparent)]`, and fully inlined:
//! the generated code is identical to raw `u64`/`f64` arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Implements the self-shaped ring ops shared by the `f64`-backed
/// quantities: addition/subtraction within the dimension, scaling by a
/// dimensionless factor, and same-dimension division to a ratio.
macro_rules! f64_quantity {
    ($t:ident, $unit:literal) => {
        impl $t {
            /// The zero quantity.
            pub const ZERO: $t = $t(0.0);

            /// Wraps a raw value expressed in the quantity's SI unit.
            #[inline]
            pub const fn new(v: f64) -> Self {
                $t(v)
            }

            /// The raw value in the quantity's SI unit. This is the *only*
            /// way out of the dimension — keep it at formatting and FFI
            /// boundaries.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Whether the value is finite (audit checks).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The larger of two quantities (NaN-propagating like `f64::max`).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $t(self.0.max(other.0))
            }
        }

        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }

        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }

        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t {
                $t(-self.0)
            }
        }

        impl Mul<f64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: f64) -> $t {
                $t(self.0 * rhs)
            }
        }

        impl Mul<$t> for f64 {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: $t) -> $t {
                $t(self * rhs.0)
            }
        }

        impl Div<f64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, rhs: f64) -> $t {
                $t(self.0 / rhs)
            }
        }

        /// Same-dimension division: a dimensionless ratio.
        impl Div<$t> for $t {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $t) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                $t(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

/// A count of clock cycles (or line-cycles, when integrating per-line
/// occupancy over time).
///
/// Backed by `u64` like every cycle counter in the simulator. Cycles can
/// be added, subtracted, compared, and summed, but they carry no wall-time
/// or energy meaning on their own: converting to [`Seconds`] requires a
/// clock via [`Cycles::seconds_at`], and there is deliberately no
/// `Joules / Cycles` — energy-per-cycle ratios must route through a
/// frequency so the units stay honest.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Named conversion to wall time at a given clock: `cycles / f`.
    ///
    /// This is the *only* path from the cycle domain into the SI domain,
    /// which is what makes `Watts * cycles.seconds_at(clock)` → [`Joules`]
    /// well-typed while `Joules / Cycles` stays a compile error.
    #[inline]
    pub fn seconds_at(self, clock: Hertz) -> Seconds {
        // u64 → f64 is exact for every cycle count this simulator can
        // reach (< 2^53); documented lossy conversion.
        #[allow(clippy::cast_precision_loss)]
        Seconds(self.0 as f64 / clock.0)
    }

    /// Dimensionless ratio of two cycle counts (for percentages such as
    /// turnoff ratio and performance loss). Returns 0 when `denom` is zero.
    #[inline]
    pub fn ratio_of(self, denom: Cycles) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.0 as f64 / denom.0 as f64
            }
        }
    }

    /// Saturating subtraction, mirroring `u64::saturating_sub`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|v| v.0).sum())
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Wall-clock time in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Seconds(f64);
f64_quantity!(Seconds, "s");

/// Clock frequency in hertz.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Hertz(f64);
f64_quantity!(Hertz, "Hz");

/// Energy in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Joules(f64);
f64_quantity!(Joules, "J");

/// Power in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Watts(f64);
f64_quantity!(Watts, "W");

/// Electric potential in volts.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Volts(f64);
f64_quantity!(Volts, "V");

/// Squared potential in volts² — the `V²` half of CACTI's `C·V²`.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VoltsSquared(f64);
f64_quantity!(VoltsSquared, "V^2");

/// Capacitance in farads — the `C` half of CACTI's `C·V²`.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Farads(f64);
f64_quantity!(Farads, "F");

/// Absolute temperature in kelvin.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Wraps an absolute temperature in kelvin.
    #[inline]
    pub const fn new(v: f64) -> Self {
        Kelvin(v)
    }

    /// Converts from degrees Celsius.
    #[inline]
    pub const fn from_celsius(c: f64) -> Self {
        Kelvin(c + 273.15)
    }

    /// The raw value in kelvin.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The temperature in degrees Celsius.
    #[inline]
    pub const fn celsius(self) -> f64 {
        self.0 - 273.15
    }

    /// Whether the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

/// Temperature deltas are dimensionally kelvin too, but letting
/// `Kelvin - Kelvin` produce a bare `f64` delta keeps the RC thermal
/// model readable without a separate delta type.
impl Sub for Kelvin {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: Kelvin) -> f64 {
        self.0 - rhs.0
    }
}

/// Offsetting a temperature by a delta in kelvin.
impl Add<f64> for Kelvin {
    type Output = Kelvin;
    #[inline]
    fn add(self, rhs: f64) -> Kelvin {
        Kelvin(self.0 + rhs)
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K", self.0)
    }
}

/// Instructions per cycle — the throughput ratio the paper's performance
/// comparisons are stated in. Dimensionally `instructions / cycle`, kept
/// distinct from [`PerCycle`] (generic event rates) so a decay-sweep rate
/// can never be compared against pipeline throughput by accident.
///
/// Construction goes through [`Ipc::of`] so the zero-cycle convention
/// (empty run → 0.0 IPC) lives in exactly one place.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Ipc(f64);

impl Ipc {
    /// Zero throughput (the convention for a run that retired nothing).
    pub const ZERO: Ipc = Ipc(0.0);

    /// Throughput of `committed` instructions over `cycles`. Returns
    /// [`Ipc::ZERO`] when `cycles` is zero.
    #[inline]
    pub fn of(committed: u64, cycles: Cycles) -> Ipc {
        if cycles.0 == 0 {
            Ipc::ZERO
        } else {
            // Exact for any instruction/cycle count this simulator can
            // reach (< 2^53); documented lossy conversion.
            #[allow(clippy::cast_precision_loss)]
            Ipc(committed as f64 / cycles.0 as f64)
        }
    }

    /// The raw dimensionless ratio.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Whether the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Ipc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} inst/cycle", self.0)
    }
}

/// An event rate per clock cycle (dimension 1/cycle) — e.g. decay sweeps
/// per cycle or induced misses per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct PerCycle(f64);
f64_quantity!(PerCycle, "/cycle");

// ---- Cross-dimension operations (the physically meaningful set) ----

/// `P · t = E`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `t · P = E`.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `E / t = P`.
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `E / P = t` (break-even horizons).
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// `E · f = P` (energy per event × event rate).
impl Mul<Hertz> for Joules {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Hertz) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `f · E = P`.
impl Mul<Joules> for Hertz {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Joules) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `t · f` = a dimensionless cycle count (real-valued; round explicitly
/// if an integral [`Cycles`] is needed).
impl Mul<Hertz> for Seconds {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Hertz) -> f64 {
        self.0 * rhs.0
    }
}

/// `f · t` = a dimensionless cycle count.
impl Mul<Seconds> for Hertz {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

/// `V · V = V²`.
impl Mul<Volts> for Volts {
    type Output = VoltsSquared;
    #[inline]
    fn mul(self, rhs: Volts) -> VoltsSquared {
        VoltsSquared(self.0 * rhs.0)
    }
}

impl Volts {
    /// `V²` of this potential.
    #[inline]
    pub fn squared(self) -> VoltsSquared {
        VoltsSquared(self.0 * self.0)
    }
}

/// `C · V² = E` (CACTI dynamic energy).
impl Mul<VoltsSquared> for Farads {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: VoltsSquared) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `V² · C = E`.
impl Mul<Farads> for VoltsSquared {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Farads) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Rate × duration = expected event count (dimensionless).
impl Mul<Cycles> for PerCycle {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Cycles) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.0 * rhs.0 as f64
        }
    }
}

impl PerCycle {
    /// The rate of `events` occurring uniformly over `span` cycles.
    /// Returns zero for an empty span.
    #[inline]
    pub fn rate(events: u64, span: Cycles) -> PerCycle {
        if span.0 == 0 {
            PerCycle(0.0)
        } else {
            #[allow(clippy::cast_precision_loss)]
            PerCycle(events as f64 / span.0 as f64)
        }
    }
}

/// Deliberate dimensional violation, compiled only under the `unit-bug`
/// feature. CI runs `cargo build -p units --features unit-bug` and asserts
/// that the build FAILS — proving that adding [`Joules`] to [`Cycles`]
/// is rejected by the type system, not merely by convention.
#[cfg(feature = "unit-bug")]
pub fn seeded_unit_bug() -> Joules {
    Joules::new(1.0e-9) + Cycles::new(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(2.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(6.0));
        assert_eq!(Seconds::new(3.0) * Watts::new(2.0), e);
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules::new(6.0) / Seconds::new(3.0), Watts::new(2.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        assert_eq!(Joules::new(6.0) / Watts::new(2.0), Seconds::new(3.0));
    }

    #[test]
    fn cycles_reach_seconds_only_through_a_clock() {
        let s = Cycles::new(5_600_000_000).seconds_at(Hertz::new(5.6e9));
        assert!((s.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv2_is_energy() {
        let e = Farads::new(1.0e-15) * Volts::new(2.0).squared();
        assert_eq!(e, Joules::new(4.0e-15));
        assert_eq!(Volts::new(2.0) * Volts::new(2.0), VoltsSquared::new(4.0));
    }

    #[test]
    fn same_dimension_division_is_a_ratio() {
        assert_eq!(Joules::new(1.0) / Joules::new(4.0), 0.25);
        assert_eq!(Watts::new(3.0) / Watts::new(1.5), 2.0);
        assert_eq!(Cycles::new(75).ratio_of(Cycles::new(100)), 0.75);
        assert_eq!(Cycles::new(75).ratio_of(Cycles::ZERO), 0.0);
    }

    #[test]
    fn cycle_arithmetic_matches_u64() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        c -= Cycles::new(3);
        assert_eq!(c, Cycles::new(12));
        assert_eq!(c * 4, Cycles::new(48));
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(7)), Cycles::ZERO);
        let total: Cycles = [Cycles::new(1), Cycles::new(2)].into_iter().sum();
        assert_eq!(total, Cycles::new(3));
    }

    #[test]
    fn kelvin_celsius_round_trip() {
        let t = Kelvin::from_celsius(110.0);
        assert!((t.get() - 383.15).abs() < 1e-12);
        assert!((t.celsius() - 110.0).abs() < 1e-12);
        assert!((Kelvin::new(384.15) - t - 1.0).abs() < 1e-12);
        assert_eq!(t + 1.0, Kelvin::new(384.15));
    }

    #[test]
    fn ipc_is_committed_over_cycles() {
        let ipc = Ipc::of(300, Cycles::new(100));
        assert_eq!(ipc.get(), 3.0);
        assert_eq!(Ipc::of(300, Cycles::ZERO), Ipc::ZERO);
        assert!(ipc > Ipc::of(100, Cycles::new(100)));
        assert!(ipc.is_finite());
        assert_eq!(ipc.to_string(), "3 inst/cycle");
    }

    #[test]
    fn per_cycle_rate_times_span_recovers_count() {
        let r = PerCycle::rate(4, Cycles::new(1024));
        assert!((r * Cycles::new(1024) - 4.0).abs() < 1e-12);
        assert_eq!(PerCycle::rate(4, Cycles::ZERO), PerCycle::ZERO);
    }

    #[test]
    fn scaling_and_accumulation() {
        let mut e = Joules::ZERO;
        e += 3.0 * Joules::new(1.0e-9);
        e += Joules::new(1.0e-9) * 2.0;
        assert_eq!(e, Joules::new(5.0e-9));
        assert_eq!(-e + e, Joules::ZERO);
        assert_eq!(e / 5.0, Joules::new(1.0e-9));
        let s: Joules = [e, e].into_iter().sum();
        assert_eq!(s, e * 2.0);
        assert!(e.is_finite());
        assert_eq!(e.max(Joules::ZERO), e);
    }

    #[test]
    fn display_carries_units() {
        assert_eq!(Joules::new(1.5).to_string(), "1.5 J");
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
        assert_eq!(Kelvin::new(300.0).to_string(), "300 K");
    }
}
