//! Zero-cost dimensional newtypes for the leakage study.
//!
//! Every quantity the energy comparison depends on — cycle counts, joules,
//! watts, volts, kelvin — gets a `#[repr(transparent)]` wrapper that only
//! implements the *physically meaningful* operations:
//!
//! - [`Watts`] `*` [`Seconds`] → [`Joules`] (and commuted)
//! - [`Joules`] `/` [`Seconds`] → [`Watts`], [`Joules`] `/` [`Watts`] → [`Seconds`]
//! - [`Cycles`] → [`Seconds`] only via the named conversion
//!   [`Cycles::seconds_at`] (a clock frequency is required — there is *no*
//!   `Joules / Cycles` and no implicit `cycles as f64`)
//! - [`Volts`] `*` [`Volts`] → [`VoltsSquared`], [`Farads`] `*`
//!   [`VoltsSquared`] → [`Joules`] (the CACTI `C·V²` decomposition)
//! - [`PerCycle`] `*` [`Cycles`] → dimensionless event count
//!
//! Same-dimension division yields a dimensionless `f64` ratio, so
//! percentages and normalized comparisons stay ordinary floats. Anything
//! else — adding joules to cycles, multiplying watts by watts — is a
//! *compile error*, which is the point: the class of unit-mixing bugs that
//! PR 2's runtime conservation audit can only catch statistically now fails
//! `cargo build`. The `unit-bug` feature gates a deliberate violation that
//! CI builds to prove the wall holds.
//!
//! All wrappers are `Copy`, `#[repr(transparent)]`, and fully inlined:
//! the generated code is identical to raw `u64`/`f64` arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Implements the self-shaped ring ops shared by the `f64`-backed
/// quantities: addition/subtraction within the dimension, scaling by a
/// dimensionless factor, and same-dimension division to a ratio.
macro_rules! f64_quantity {
    ($t:ident, $unit:literal) => {
        impl $t {
            /// The zero quantity.
            pub const ZERO: $t = $t(0.0);

            /// Wraps a raw value expressed in the quantity's SI unit.
            #[inline]
            pub const fn new(v: f64) -> Self {
                $t(v)
            }

            /// The raw value in the quantity's SI unit. This is the *only*
            /// way out of the dimension — keep it at formatting and FFI
            /// boundaries.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Whether the value is finite (audit checks).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The larger of two quantities (NaN-propagating like `f64::max`).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $t(self.0.max(other.0))
            }
        }

        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }

        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }

        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t {
                $t(-self.0)
            }
        }

        impl Mul<f64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: f64) -> $t {
                $t(self.0 * rhs)
            }
        }

        impl Mul<$t> for f64 {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: $t) -> $t {
                $t(self * rhs.0)
            }
        }

        impl Div<f64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, rhs: f64) -> $t {
                $t(self.0 / rhs)
            }
        }

        /// Same-dimension division: a dimensionless ratio.
        impl Div<$t> for $t {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $t) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                $t(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

/// A count of clock cycles (or line-cycles, when integrating per-line
/// occupancy over time).
///
/// Backed by `u64` like every cycle counter in the simulator. Cycles can
/// be added, subtracted, compared, and summed, but they carry no wall-time
/// or energy meaning on their own: converting to [`Seconds`] requires a
/// clock via [`Cycles::seconds_at`], and there is deliberately no
/// `Joules / Cycles` — energy-per-cycle ratios must route through a
/// frequency so the units stay honest.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Named conversion to wall time at a given clock: `cycles / f`.
    ///
    /// This is the *only* path from the cycle domain into the SI domain,
    /// which is what makes `Watts * cycles.seconds_at(clock)` → [`Joules`]
    /// well-typed while `Joules / Cycles` stays a compile error.
    #[inline]
    pub fn seconds_at(self, clock: Hertz) -> Seconds {
        // u64 → f64 is exact for every cycle count this simulator can
        // reach (< 2^53); documented lossy conversion.
        #[allow(clippy::cast_precision_loss)]
        Seconds(self.0 as f64 / clock.0)
    }

    /// Dimensionless ratio of two cycle counts (for percentages such as
    /// turnoff ratio and performance loss). Returns 0 when `denom` is zero.
    #[inline]
    pub fn ratio_of(self, denom: Cycles) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.0 as f64 / denom.0 as f64
            }
        }
    }

    /// Saturating subtraction, mirroring `u64::saturating_sub`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|v| v.0).sum())
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Wall-clock time in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Seconds(f64);
f64_quantity!(Seconds, "s");

/// Clock frequency in hertz.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Hertz(f64);
f64_quantity!(Hertz, "Hz");

/// Energy in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Joules(f64);
f64_quantity!(Joules, "J");

/// Power in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Watts(f64);
f64_quantity!(Watts, "W");

/// Electric potential in volts.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Volts(f64);
f64_quantity!(Volts, "V");

/// Squared potential in volts² — the `V²` half of CACTI's `C·V²`.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VoltsSquared(f64);
f64_quantity!(VoltsSquared, "V^2");

/// Capacitance in farads — the `C` half of CACTI's `C·V²`.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Farads(f64);
f64_quantity!(Farads, "F");

/// Absolute temperature in kelvin.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Wraps an absolute temperature in kelvin.
    #[inline]
    pub const fn new(v: f64) -> Self {
        Kelvin(v)
    }

    /// Converts from degrees Celsius.
    #[inline]
    pub const fn from_celsius(c: f64) -> Self {
        Kelvin(c + 273.15)
    }

    /// The raw value in kelvin.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The temperature in degrees Celsius.
    #[inline]
    pub const fn celsius(self) -> f64 {
        self.0 - 273.15
    }

    /// Whether the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

/// Temperature deltas are dimensionally kelvin too, but letting
/// `Kelvin - Kelvin` produce a bare `f64` delta keeps the RC thermal
/// model readable without a separate delta type.
impl Sub for Kelvin {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: Kelvin) -> f64 {
        self.0 - rhs.0
    }
}

/// Offsetting a temperature by a delta in kelvin.
impl Add<f64> for Kelvin {
    type Output = Kelvin;
    #[inline]
    fn add(self, rhs: f64) -> Kelvin {
        Kelvin(self.0 + rhs)
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K", self.0)
    }
}

/// Instructions per cycle — the throughput ratio the paper's performance
/// comparisons are stated in. Dimensionally `instructions / cycle`, kept
/// distinct from [`PerCycle`] (generic event rates) so a decay-sweep rate
/// can never be compared against pipeline throughput by accident.
///
/// Construction goes through [`Ipc::of`] so the zero-cycle convention
/// (empty run → 0.0 IPC) lives in exactly one place.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Ipc(f64);

impl Ipc {
    /// Zero throughput (the convention for a run that retired nothing).
    pub const ZERO: Ipc = Ipc(0.0);

    /// Throughput of `committed` instructions over `cycles`. Returns
    /// [`Ipc::ZERO`] when `cycles` is zero.
    #[inline]
    pub fn of(committed: u64, cycles: Cycles) -> Ipc {
        if cycles.0 == 0 {
            Ipc::ZERO
        } else {
            // Exact for any instruction/cycle count this simulator can
            // reach (< 2^53); documented lossy conversion.
            #[allow(clippy::cast_precision_loss)]
            Ipc(committed as f64 / cycles.0 as f64)
        }
    }

    /// The raw dimensionless ratio.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Whether the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Ipc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} inst/cycle", self.0)
    }
}

/// An event rate per clock cycle (dimension 1/cycle) — e.g. decay sweeps
/// per cycle or induced misses per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
#[repr(transparent)]
pub struct PerCycle(f64);
f64_quantity!(PerCycle, "/cycle");

// ---- Cross-dimension operations (the physically meaningful set) ----

/// `P · t = E`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `t · P = E`.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `E / t = P`.
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `E / P = t` (break-even horizons).
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// `E · f = P` (energy per event × event rate).
impl Mul<Hertz> for Joules {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Hertz) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `f · E = P`.
impl Mul<Joules> for Hertz {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Joules) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `t · f` = a dimensionless cycle count (real-valued; round explicitly
/// if an integral [`Cycles`] is needed).
impl Mul<Hertz> for Seconds {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Hertz) -> f64 {
        self.0 * rhs.0
    }
}

/// `f · t` = a dimensionless cycle count.
impl Mul<Seconds> for Hertz {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

/// `V · V = V²`.
impl Mul<Volts> for Volts {
    type Output = VoltsSquared;
    #[inline]
    fn mul(self, rhs: Volts) -> VoltsSquared {
        VoltsSquared(self.0 * rhs.0)
    }
}

impl Volts {
    /// `V²` of this potential.
    #[inline]
    pub fn squared(self) -> VoltsSquared {
        VoltsSquared(self.0 * self.0)
    }
}

/// `C · V² = E` (CACTI dynamic energy).
impl Mul<VoltsSquared> for Farads {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: VoltsSquared) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `V² · C = E`.
impl Mul<Farads> for VoltsSquared {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Farads) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Rate × duration = expected event count (dimensionless).
impl Mul<Cycles> for PerCycle {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Cycles) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.0 * rhs.0 as f64
        }
    }
}

impl PerCycle {
    /// The rate of `events` occurring uniformly over `span` cycles.
    /// Returns zero for an empty span.
    #[inline]
    pub fn rate(events: u64, span: Cycles) -> PerCycle {
        if span.0 == 0 {
            PerCycle(0.0)
        } else {
            #[allow(clippy::cast_precision_loss)]
            PerCycle(events as f64 / span.0 as f64)
        }
    }
}

/// A linear fixed-width histogram over [`Cycles`].
///
/// The study server's wall-clock service histograms bucket by powers of
/// two, which is the right shape for latencies spanning six decades but
/// far too coarse for *simulated* probe timings: the leakage harness
/// distinguishes a 1-cycle hit from a 4-cycle drowsy wake-up, and a
/// log-scaled bucket would alias exactly the observations the
/// distinguishability metrics exist to separate. This histogram keeps
/// every bucket `bucket_width` cycles wide — bucket `i` counts values in
/// `[i·w, (i+1)·w)` — so equal-width timing classes stay distinct, and
/// anything past the last boundary saturates into the final bucket (and
/// is tallied separately in [`CycleHistogram::saturated`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleHistogram {
    /// Width of every bucket, cycles.
    bucket_width: Cycles,
    /// Per-bucket counts; the last bucket also absorbs saturated values.
    buckets: Vec<u64>,
    /// Observations recorded.
    count: u64,
    /// Sum of all recorded values (saturating).
    total: Cycles,
    /// Observations past the last bucket's natural range.
    saturated: u64,
}

impl CycleHistogram {
    /// An empty histogram of `num_buckets` buckets, each `bucket_width`
    /// cycles wide.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `num_buckets` is zero — a
    /// zero-width or bucketless histogram cannot classify anything.
    pub fn new(bucket_width: Cycles, num_buckets: usize) -> Self {
        assert!(bucket_width.0 > 0, "bucket width must be positive");
        assert!(num_buckets > 0, "histogram needs at least one bucket");
        CycleHistogram {
            bucket_width,
            buckets: vec![0; num_buckets],
            count: 0,
            total: Cycles::ZERO,
            saturated: 0,
        }
    }

    /// Records one observation. Values past the last bucket's natural
    /// range land in the last bucket and bump
    /// [`CycleHistogram::saturated`].
    pub fn record(&mut self, value: Cycles) {
        let idx = value.0 / self.bucket_width.0;
        let last = (self.buckets.len() - 1) as u64;
        if idx > last {
            self.saturated += 1;
            self.buckets[last as usize] += 1;
        } else {
            self.buckets[idx as usize] += 1;
        }
        self.count += 1;
        self.total = Cycles(self.total.0.saturating_add(value.0));
    }

    /// Width of every bucket.
    pub fn bucket_width(&self) -> Cycles {
        self.bucket_width
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Per-bucket counts, [`CycleHistogram::num_buckets`] long.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Half-open value range `[lo, hi)` of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (Cycles, Cycles) {
        assert!(i < self.buckets.len(), "bucket {i} out of range");
        let lo = self.bucket_width.0 * i as u64;
        (Cycles(lo), Cycles(lo + self.bucket_width.0))
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating at `u64::MAX`).
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Observations that overflowed the last bucket's natural range.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }
}

/// Deliberate dimensional violation, compiled only under the `unit-bug`
/// feature. CI runs `cargo build -p units --features unit-bug` and asserts
/// that the build FAILS — proving that adding [`Joules`] to [`Cycles`]
/// is rejected by the type system, not merely by convention.
#[cfg(feature = "unit-bug")]
pub fn seeded_unit_bug() -> Joules {
    Joules::new(1.0e-9) + Cycles::new(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(2.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(6.0));
        assert_eq!(Seconds::new(3.0) * Watts::new(2.0), e);
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules::new(6.0) / Seconds::new(3.0), Watts::new(2.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        assert_eq!(Joules::new(6.0) / Watts::new(2.0), Seconds::new(3.0));
    }

    #[test]
    fn cycles_reach_seconds_only_through_a_clock() {
        let s = Cycles::new(5_600_000_000).seconds_at(Hertz::new(5.6e9));
        assert!((s.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv2_is_energy() {
        let e = Farads::new(1.0e-15) * Volts::new(2.0).squared();
        assert_eq!(e, Joules::new(4.0e-15));
        assert_eq!(Volts::new(2.0) * Volts::new(2.0), VoltsSquared::new(4.0));
    }

    #[test]
    fn same_dimension_division_is_a_ratio() {
        assert_eq!(Joules::new(1.0) / Joules::new(4.0), 0.25);
        assert_eq!(Watts::new(3.0) / Watts::new(1.5), 2.0);
        assert_eq!(Cycles::new(75).ratio_of(Cycles::new(100)), 0.75);
        assert_eq!(Cycles::new(75).ratio_of(Cycles::ZERO), 0.0);
    }

    #[test]
    fn cycle_arithmetic_matches_u64() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        c -= Cycles::new(3);
        assert_eq!(c, Cycles::new(12));
        assert_eq!(c * 4, Cycles::new(48));
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(7)), Cycles::ZERO);
        let total: Cycles = [Cycles::new(1), Cycles::new(2)].into_iter().sum();
        assert_eq!(total, Cycles::new(3));
    }

    #[test]
    fn kelvin_celsius_round_trip() {
        let t = Kelvin::from_celsius(110.0);
        assert!((t.get() - 383.15).abs() < 1e-12);
        assert!((t.celsius() - 110.0).abs() < 1e-12);
        assert!((Kelvin::new(384.15) - t - 1.0).abs() < 1e-12);
        assert_eq!(t + 1.0, Kelvin::new(384.15));
    }

    #[test]
    fn ipc_is_committed_over_cycles() {
        let ipc = Ipc::of(300, Cycles::new(100));
        assert_eq!(ipc.get(), 3.0);
        assert_eq!(Ipc::of(300, Cycles::ZERO), Ipc::ZERO);
        assert!(ipc > Ipc::of(100, Cycles::new(100)));
        assert!(ipc.is_finite());
        assert_eq!(ipc.to_string(), "3 inst/cycle");
    }

    #[test]
    fn per_cycle_rate_times_span_recovers_count() {
        let r = PerCycle::rate(4, Cycles::new(1024));
        assert!((r * Cycles::new(1024) - 4.0).abs() < 1e-12);
        assert_eq!(PerCycle::rate(4, Cycles::ZERO), PerCycle::ZERO);
    }

    #[test]
    fn scaling_and_accumulation() {
        let mut e = Joules::ZERO;
        e += 3.0 * Joules::new(1.0e-9);
        e += Joules::new(1.0e-9) * 2.0;
        assert_eq!(e, Joules::new(5.0e-9));
        assert_eq!(-e + e, Joules::ZERO);
        assert_eq!(e / 5.0, Joules::new(1.0e-9));
        let s: Joules = [e, e].into_iter().sum();
        assert_eq!(s, e * 2.0);
        assert!(e.is_finite());
        assert_eq!(e.max(Joules::ZERO), e);
    }

    #[test]
    fn display_carries_units() {
        assert_eq!(Joules::new(1.5).to_string(), "1.5 J");
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
        assert_eq!(Kelvin::new(300.0).to_string(), "300 K");
    }

    #[test]
    fn cycle_histogram_bucket_boundaries_are_off_by_one_free_at_powers_of_two() {
        // Regression guard for the classic boundary slip: with width 2^k,
        // a value of exactly m·2^k opens bucket m — it must never land in
        // bucket m−1 (inclusive-upper bug) nor m+1 (log2-rounding bug).
        for k in [1u64, 3, 6] {
            let w = 1u64 << k;
            let mut h = CycleHistogram::new(Cycles::new(w), 8);
            for m in 0..8u64 {
                h.record(Cycles::new(m * w)); // lower boundary of bucket m
                if m > 0 {
                    h.record(Cycles::new(m * w - 1)); // top of bucket m−1
                }
            }
            for m in 0..8usize {
                // Each bucket saw its own lower bound plus the top value
                // of its range — except the last, whose top (8·w − 1) was
                // never recorded.
                let expected = if m == 7 { 1 } else { 2 };
                assert_eq!(h.buckets()[m], expected, "width {w}, bucket {m}");
                let (lo, hi) = h.bucket_bounds(m);
                assert_eq!(lo.get(), m as u64 * w);
                assert_eq!(hi.get(), (m as u64 + 1) * w);
            }
            assert_eq!(h.saturated(), 0, "no in-range value may saturate");
        }
    }

    #[test]
    fn cycle_histogram_saturates_into_the_last_bucket() {
        let mut h = CycleHistogram::new(Cycles::new(4), 4); // covers [0, 16)
        h.record(Cycles::new(15)); // top of the last natural bucket
        h.record(Cycles::new(16)); // first value past the range
        h.record(Cycles::new(u64::MAX)); // way past; total must not wrap
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), &[0, 0, 0, 3]);
        assert_eq!(h.saturated(), 2, "15 is in range; 16 and MAX overflow");
        assert_eq!(h.total(), Cycles::new(u64::MAX), "total saturates");
    }

    #[test]
    fn cycle_histogram_serializes_and_counts_single_cycle_classes() {
        // Width 1 keeps each probe-timing class its own bucket — the
        // resolution the leakage harness needs (hit=1 vs drowsy wake=4).
        let mut h = CycleHistogram::new(Cycles::new(1), 8);
        h.record(Cycles::new(1));
        h.record(Cycles::new(1));
        h.record(Cycles::new(4));
        assert_eq!(h.buckets(), &[0, 2, 0, 0, 1, 0, 0, 0]);
        assert_eq!(h.total(), Cycles::new(6));
        let text = serde_json::to_string(&h).expect("serializes");
        assert!(text.contains("\"buckets\""), "{text}");
    }
}
