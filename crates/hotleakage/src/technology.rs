//! Per-node technology parameter tables.
//!
//! HotLeakage ships lookup tables derived from transistor-level (Cadence /
//! AIM-SPICE, BSIM3 v3.2) simulation for the 180 nm through 70 nm nodes. This
//! module reproduces those tables from the constants the paper publishes:
//!
//! * default supply voltages `V_dd0` = 2.0 / 1.5 / 1.2 / 1.0 V for
//!   180 / 130 / 100 / 70 nm (paper §3.1.1);
//! * 70 nm threshold voltages 0.190 V (NMOS) and 0.213 V (PMOS) (paper §2.3);
//! * 1.2 nm gate oxide and a 40 nA/µm gate-leakage target at 70 nm
//!   (paper §3.2);
//!
//! with the remaining BSIM3 fit constants (mobility, subthreshold swing,
//! DIBL coefficient, `V_off`) set to standard values for each generation and
//! annotated below.

use serde::{Deserialize, Serialize};
use units::{Hertz, Kelvin, Volts};

use crate::consts;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceType {
    /// N-channel MOSFET.
    Nmos,
    /// P-channel MOSFET.
    Pmos,
}

impl DeviceType {
    /// Both polarities, in the order `[Nmos, Pmos]`.
    pub const ALL: [DeviceType; 2] = [DeviceType::Nmos, DeviceType::Pmos];
}

/// BSIM3-style fit parameters for one device polarity at one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Zero-bias mobility `µ0` in m²/(V·s) at 300 K.
    pub u0: f64,
    /// Zero-bias threshold voltage at 300 K, volts (magnitude).
    pub vth0: f64,
    /// DIBL curve-fit coefficient `b` (1/V) in the `e^{b(Vdd − Vdd0)}` term.
    pub dibl_b: f64,
    /// Subthreshold swing coefficient `n` (dimensionless, ≈ 1.3–1.6).
    pub swing_n: f64,
    /// BSIM3 `V_off` fit parameter, volts (typically ≈ −0.08 V; a weak
    /// function of threshold voltage in BSIM3, captured here as a constant
    /// per polarity per node as the HotLeakage tables do).
    pub voff: f64,
    /// Threshold-voltage temperature coefficient `dVth/dT`, V/K (negative:
    /// `Vth` falls as temperature rises).
    pub vth_tc: f64,
    /// Mobility temperature exponent: `µ(T) = µ0 · (T/300)^{u_te}`
    /// (BSIM3 `ute`, typically ≈ −1.5).
    pub mobility_te: f64,
}

impl DeviceParams {
    /// Threshold voltage magnitude at temperature `t`.
    pub fn vth_at(&self, t: Kelvin) -> Volts {
        Volts::new((self.vth0 + self.vth_tc * (t.get() - consts::T_REF)).max(0.0))
    }

    /// Mobility at temperature `t`, m²/(V·s).
    pub fn mobility_at(&self, t: Kelvin) -> f64 {
        self.u0 * (t.get() / consts::T_REF).powf(self.mobility_te)
    }
}

/// Full parameter table for one technology node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Feature size in nanometres.
    pub feature_nm: f64,
    /// Default supply voltage `V_dd0`, volts.
    pub vdd0: f64,
    /// Gate-oxide thickness, metres.
    pub tox: f64,
    /// NMOS fit parameters.
    pub nmos: DeviceParams,
    /// PMOS fit parameters.
    pub pmos: DeviceParams,
    /// Nominal clock frequency the study uses at this node, Hz (the paper
    /// runs the 70 nm machine at 5.6 GHz).
    pub clock_hz: f64,
    /// High threshold voltage available for sleep/header devices, volts.
    pub vth_high: f64,
}

impl TechParams {
    /// Nominal study clock at this node as a typed frequency.
    pub fn clock(&self) -> Hertz {
        Hertz::new(self.clock_hz)
    }

    /// Gate-oxide capacitance per unit area, F/m².
    pub fn cox(&self) -> f64 {
        consts::oxide_capacitance(self.tox)
    }

    /// Parameters for the given polarity.
    pub fn device(&self, device: DeviceType) -> &DeviceParams {
        match device {
            DeviceType::Nmos => &self.nmos,
            DeviceType::Pmos => &self.pmos,
        }
    }
}

/// A supported technology node.
///
/// ```
/// use hotleakage::TechNode;
/// assert_eq!(TechNode::N70.params().vdd0, 1.0);
/// assert_eq!(TechNode::N180.params().vdd0, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 180 nm generation (V_dd0 = 2.0 V).
    N180,
    /// 130 nm generation (V_dd0 = 1.5 V).
    N130,
    /// 100 nm generation (V_dd0 = 1.2 V).
    N100,
    /// 70 nm generation (V_dd0 = 1.0 V) — the node the paper's study uses.
    N70,
}

impl TechNode {
    /// All supported nodes, newest last.
    pub const ALL: [TechNode; 4] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N100,
        TechNode::N70,
    ];

    /// The static parameter table for this node.
    pub fn params(self) -> &'static TechParams {
        match self {
            TechNode::N180 => &N180_PARAMS,
            TechNode::N130 => &N130_PARAMS,
            TechNode::N100 => &N100_PARAMS,
            TechNode::N70 => &N70_PARAMS,
        }
    }

    /// NMOS threshold voltage at 300 K (convenience).
    pub fn vth_n(self) -> f64 {
        self.params().nmos.vth0
    }

    /// PMOS threshold voltage magnitude at 300 K (convenience).
    pub fn vth_p(self) -> f64 {
        self.params().pmos.vth0
    }
}

impl std::fmt::Display for TechNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nm = self.params().feature_nm;
        write!(f, "{nm:.0}nm")
    }
}

// PMOS mobility is ~4-5x lower than NMOS; |Vth_p| slightly above Vth_n at
// every node, matching the paper's note that N and P parameters "differ too
// much" for a single k_design. DIBL strengthens (larger b) and swing degrades
// (larger n) as channels shorten.

static N180_PARAMS: TechParams = TechParams {
    feature_nm: 180.0,
    vdd0: 2.0,
    tox: 4.5e-9,
    nmos: DeviceParams {
        u0: 0.0450,
        vth0: 0.398,
        dibl_b: 1.2,
        swing_n: 1.37,
        voff: -0.080,
        vth_tc: -0.9e-3,
        mobility_te: -1.5,
    },
    pmos: DeviceParams {
        u0: 0.0100,
        vth0: 0.466,
        dibl_b: 1.1,
        swing_n: 1.42,
        voff: -0.082,
        vth_tc: -0.9e-3,
        mobility_te: -1.4,
    },
    clock_hz: 1.0e9,
    vth_high: 0.60,
};

static N130_PARAMS: TechParams = TechParams {
    feature_nm: 130.0,
    vdd0: 1.5,
    tox: 3.3e-9,
    nmos: DeviceParams {
        u0: 0.0480,
        vth0: 0.330,
        dibl_b: 1.7,
        swing_n: 1.40,
        voff: -0.080,
        vth_tc: -0.85e-3,
        mobility_te: -1.5,
    },
    pmos: DeviceParams {
        u0: 0.0105,
        vth0: 0.380,
        dibl_b: 1.5,
        swing_n: 1.45,
        voff: -0.082,
        vth_tc: -0.85e-3,
        mobility_te: -1.4,
    },
    clock_hz: 2.2e9,
    vth_high: 0.52,
};

static N100_PARAMS: TechParams = TechParams {
    feature_nm: 100.0,
    vdd0: 1.2,
    tox: 2.5e-9,
    nmos: DeviceParams {
        u0: 0.0510,
        vth0: 0.260,
        dibl_b: 2.3,
        swing_n: 1.45,
        voff: -0.080,
        vth_tc: -0.8e-3,
        mobility_te: -1.5,
    },
    pmos: DeviceParams {
        u0: 0.0110,
        vth0: 0.300,
        dibl_b: 2.0,
        swing_n: 1.50,
        voff: -0.082,
        vth_tc: -0.8e-3,
        mobility_te: -1.4,
    },
    clock_hz: 3.5e9,
    vth_high: 0.48,
};

static N70_PARAMS: TechParams = TechParams {
    feature_nm: 70.0,
    vdd0: 1.0,
    tox: 1.2e-9,
    nmos: DeviceParams {
        // Paper §2.3: 0.190 V NMOS / 0.213 V PMOS thresholds at 70 nm.
        u0: 0.0550,
        vth0: 0.190,
        dibl_b: 3.0,
        swing_n: 1.50,
        voff: -0.080,
        vth_tc: -0.8e-3,
        mobility_te: -1.5,
    },
    pmos: DeviceParams {
        u0: 0.0115,
        vth0: 0.213,
        dibl_b: 2.6,
        swing_n: 1.55,
        voff: -0.082,
        vth_tc: -0.8e-3,
        mobility_te: -1.4,
    },
    // Paper §4.1: 70 nm process at 0.9 V and 5600 MHz.
    clock_hz: 5.6e9,
    vth_high: 0.45,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdd0_matches_paper_table() {
        assert_eq!(TechNode::N180.params().vdd0, 2.0);
        assert_eq!(TechNode::N130.params().vdd0, 1.5);
        assert_eq!(TechNode::N100.params().vdd0, 1.2);
        assert_eq!(TechNode::N70.params().vdd0, 1.0);
    }

    #[test]
    fn seventy_nm_thresholds_match_paper() {
        assert_eq!(TechNode::N70.vth_n(), 0.190);
        assert_eq!(TechNode::N70.vth_p(), 0.213);
    }

    #[test]
    fn thresholds_fall_with_scaling() {
        let mut prev = f64::INFINITY;
        for node in TechNode::ALL {
            let v = node.vth_n();
            assert!(v < prev, "vth should shrink with each generation");
            prev = v;
        }
    }

    #[test]
    fn vth_falls_with_temperature() {
        let d = TechNode::N70.params().nmos;
        assert!(d.vth_at(Kelvin::new(383.15)) < d.vth_at(Kelvin::new(300.0)));
        assert!(d.vth_at(Kelvin::new(383.15)) > Volts::ZERO);
    }

    #[test]
    fn mobility_falls_with_temperature() {
        let d = TechNode::N70.params().nmos;
        assert!(d.mobility_at(Kelvin::new(383.15)) < d.mobility_at(Kelvin::new(300.0)));
    }

    #[test]
    fn cox_larger_for_thinner_oxide() {
        assert!(TechNode::N70.params().cox() > TechNode::N180.params().cox());
    }

    #[test]
    fn display_formats_node_name() {
        assert_eq!(TechNode::N70.to_string(), "70nm");
        assert_eq!(TechNode::N180.to_string(), "180nm");
    }

    #[test]
    fn pmos_slower_than_nmos_everywhere() {
        for node in TechNode::ALL {
            let p = node.params();
            assert!(p.pmos.u0 < p.nmos.u0);
            assert!(p.pmos.vth0 > p.nmos.vth0);
        }
    }
}
