//! Leakage of individual cells via the double-`k_design` model
//! (paper Eq. 3: `I_cell = n_n·k_n·I_n + n_p·k_p·I_p`) plus per-cell gate
//! (tunnelling) leakage.

use serde::{Deserialize, Serialize};
use units::Watts;

use crate::gate_leakage;
use crate::kdesign::{self, GateTopology, KDesign, Network};
use crate::Environment;

/// Aspect ratio of the SRAM pull-down NMOS devices.
pub const SRAM_WL_PULL_DOWN: f64 = 2.0;
/// Aspect ratio of the SRAM access NMOS devices. The paper notes drowsy
/// designs use high-Vt access devices but deliberately models the *same* Vt
/// for all transistors of a type to keep the comparison fair (§2.3); we
/// follow that.
pub const SRAM_WL_ACCESS: f64 = 1.2;
/// Aspect ratio of the SRAM pull-up PMOS devices.
pub const SRAM_WL_PULL_UP: f64 = 1.0;

/// The cell types the cache and register-file structure models are built
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CellKind {
    /// A six-transistor SRAM bit cell (4 NMOS, 2 PMOS).
    Sram6t,
    /// A static CMOS inverter (wordline drivers, buffers).
    Inverter,
    /// A two-input NAND (predecode, control).
    Nand2,
    /// A three-input NAND (row decoders).
    Nand3,
    /// A two-input NOR (decode, match logic).
    Nor2,
    /// A differential sense amplifier, approximated as a cross-coupled
    /// inverter pair plus bias devices (4 NMOS, 2 PMOS, roughly one side
    /// off at a time).
    SenseAmp,
}

impl CellKind {
    /// All cell kinds used by the structure models.
    pub const ALL: [CellKind; 6] = [
        CellKind::Sram6t,
        CellKind::Inverter,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::SenseAmp,
    ];

    /// `(n_n, n_p)`: NMOS / PMOS device counts of one cell.
    pub fn device_counts(self) -> (usize, usize) {
        match self {
            CellKind::Sram6t => (4, 2),
            CellKind::Inverter => (1, 1),
            CellKind::Nand2 => (2, 2),
            CellKind::Nand3 => (3, 3),
            CellKind::Nor2 => (2, 2),
            CellKind::SenseAmp => (4, 2),
        }
    }

    /// Total gate width of the cell in micrometres of minimum feature,
    /// used for gate-tunnelling leakage. Width = (W/L)·L_feature summed over
    /// devices.
    pub fn total_gate_width_um(self, feature_nm: f64) -> f64 {
        let l_um = feature_nm / 1000.0;
        let wl_sum: f64 = match self {
            CellKind::Sram6t => {
                2.0 * SRAM_WL_PULL_DOWN + 2.0 * SRAM_WL_ACCESS + 2.0 * SRAM_WL_PULL_UP
            }
            CellKind::Inverter => kdesign::LOGIC_WL_N + kdesign::LOGIC_WL_P,
            CellKind::Nand2 => 2.0 * (2.0 * kdesign::LOGIC_WL_N) + 2.0 * kdesign::LOGIC_WL_P,
            CellKind::Nand3 => 3.0 * (3.0 * kdesign::LOGIC_WL_N) + 3.0 * kdesign::LOGIC_WL_P,
            CellKind::Nor2 => 2.0 * kdesign::LOGIC_WL_N + 2.0 * (2.0 * kdesign::LOGIC_WL_P),
            CellKind::SenseAmp => 4.0 * kdesign::LOGIC_WL_N + 2.0 * kdesign::LOGIC_WL_P,
        };
        wl_sum * l_um
    }
}

/// One cell instance whose leakage can be queried at any operating point.
///
/// ```
/// use hotleakage::{Cell, CellKind, Environment, TechNode};
///
/// let env = Environment::new(TechNode::N70, 0.9, 383.15)?;
/// let bit = Cell::new(CellKind::Sram6t);
/// let i = bit.leakage_current(&env);
/// assert!(i > 0.0);
/// // P_static = Vdd · I (Eq. 4, for a single cell)
/// let p = bit.leakage_power(&env);
/// assert!((p.get() - env.vdd() * i).abs() < 1e-18);
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    kind: CellKind,
}

impl Cell {
    /// Creates a cell of the given kind.
    pub fn new(kind: CellKind) -> Self {
        Cell { kind }
    }

    /// The kind of this cell.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The derived `(k_n, k_p)` design factors at the given operating point.
    pub fn kdesign(&self, env: &Environment) -> KDesign {
        match self.kind {
            CellKind::Sram6t => sram_kdesign(env),
            CellKind::Inverter => kdesign::derive(env, &GateTopology::inverter()),
            CellKind::Nand2 => kdesign::derive(env, &GateTopology::nand(2)),
            CellKind::Nand3 => kdesign::derive(env, &GateTopology::nand(3)),
            CellKind::Nor2 => kdesign::derive(env, &GateTopology::nor(2)),
            CellKind::SenseAmp => sense_amp_kdesign(env),
        }
    }

    /// Subthreshold leakage current of the cell, amperes (paper Eq. 3).
    pub fn subthreshold_current(&self, env: &Environment) -> f64 {
        let (n_n, n_p) = self.kind.device_counts();
        let k = self.kdesign(env);
        n_n as f64 * k.kn * env.unit_leakage_n() + n_p as f64 * k.kp * env.unit_leakage_p()
    }

    /// Gate (tunnelling) leakage current of the cell, amperes.
    pub fn gate_current(&self, env: &Environment) -> f64 {
        // Roughly half the devices in a static cell hold their gate at Vdd
        // over an inverting device; only those tunnel significantly.
        let width = self.kind.total_gate_width_um(env.tech().feature_nm);
        0.5 * gate_leakage::gate_current(env, width)
    }

    /// Total leakage current (subthreshold + gate), amperes.
    pub fn leakage_current(&self, env: &Environment) -> f64 {
        self.subthreshold_current(env) + self.gate_current(env)
    }

    /// Static power of the cell: `P = V_dd · I_cell` (paper Eq. 4
    /// specialised to one cell).
    pub fn leakage_power(&self, env: &Environment) -> Watts {
        Watts::new(env.vdd() * self.leakage_current(env))
    }
}

/// SRAM 6T `k_design`: the "inputs" are the two stored states. In either
/// state one pull-down NMOS, one access NMOS (bitlines precharged high over
/// a low node) and one pull-up PMOS are off with full drain bias; the rest
/// see no bias.
fn sram_kdesign(env: &Environment) -> KDesign {
    let gate = GateTopology {
        name: "sram6t-half",
        num_inputs: 1,
        // Per stored state: off pull-down N (full bias) in parallel with the
        // off access N discharging the precharged bitline.
        pull_down: Network::Parallel(vec![
            Network::device(0, SRAM_WL_PULL_DOWN, true),
            Network::device(0, SRAM_WL_ACCESS, true),
        ]),
        pull_up: Network::device(0, SRAM_WL_PULL_UP, false),
    };
    // The half gate leaks only in one of its two pseudo-states, while the
    // full cell leaks through exactly one (symmetric) half in *each* state.
    // Both ratios divide the same per-state current by (2 states · half the
    // device count), so the derived factors carry over unchanged:
    //   half: I_state / (2 · n/2 · I_unit)  ==  full: 2·I_state / (2 · n · I_unit)
    kdesign::derive(env, &gate)
}

/// Sense-amp `k_design`: cross-coupled pair biased like an SRAM cell without
/// access devices, plus always-off equalisation devices.
fn sense_amp_kdesign(env: &Environment) -> KDesign {
    let gate = GateTopology {
        name: "senseamp-half",
        num_inputs: 1,
        pull_down: Network::Parallel(vec![
            Network::device(0, kdesign::LOGIC_WL_N, true),
            Network::device(0, kdesign::LOGIC_WL_N, true),
        ]),
        pull_up: Network::device(0, kdesign::LOGIC_WL_P, false),
    };
    // Same half-cell symmetry argument as `sram_kdesign`.
    kdesign::derive(env, &gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn env() -> Environment {
        Environment::new(TechNode::N70, 0.9, 383.15).unwrap()
    }

    #[test]
    fn sram_cell_leaks_nanoamps_at_110c() {
        let i = Cell::new(CellKind::Sram6t).leakage_current(&env());
        assert!(
            i > 1e-9 && i < 5e-6,
            "6T cell at 110C/0.9V should leak nA-scale, got {i}"
        );
    }

    #[test]
    fn power_is_vdd_times_current() {
        let c = Cell::new(CellKind::Nand2);
        let e = env();
        assert!((c.leakage_power(&e).get() - e.vdd() * c.leakage_current(&e)).abs() < 1e-20);
    }

    #[test]
    fn all_cells_have_positive_leakage() {
        let e = env();
        for kind in CellKind::ALL {
            let i = Cell::new(kind).leakage_current(&e);
            assert!(i > 0.0, "{kind:?} must leak");
        }
    }

    #[test]
    fn bigger_gates_leak_more() {
        let e = env();
        let inv = Cell::new(CellKind::Inverter).leakage_current(&e);
        let nand3 = Cell::new(CellKind::Nand3).leakage_current(&e);
        assert!(nand3 > inv);
    }

    #[test]
    fn retention_voltage_slashes_cell_leakage() {
        // A drowsy cell at ~1.5 Vth retains its value but leaks a small
        // fraction of its full-Vdd leakage (DIBL + drain term + gate
        // collapse).
        let full = Environment::new(TechNode::N70, 0.9, 383.15).unwrap();
        let drowsy_v = 1.5 * TechNode::N70.vth_n();
        let drowsy = Environment::new(TechNode::N70, drowsy_v, 383.15).unwrap();
        let cell = Cell::new(CellKind::Sram6t);
        let ratio = cell.leakage_power(&drowsy) / cell.leakage_power(&full);
        assert!(
            ratio > 0.02 && ratio < 0.35,
            "drowsy cells leak a small but nonzero fraction; ratio={ratio}"
        );
    }

    #[test]
    fn gate_leakage_significant_at_70nm_only() {
        let e70 = Environment::nominal(TechNode::N70);
        let e130 = Environment::nominal(TechNode::N130);
        let c = Cell::new(CellKind::Sram6t);
        let frac70 = c.gate_current(&e70) / c.leakage_current(&e70);
        let frac130 = c.gate_current(&e130) / c.leakage_current(&e130);
        assert!(
            frac70 > 0.05,
            "gate leakage should matter at 70nm: {frac70}"
        );
        assert!(
            frac130 < 0.02,
            "gate leakage should be minor at 130nm: {frac130}"
        );
    }

    #[test]
    fn sram_kdesign_reflects_sizing() {
        let k = Cell::new(CellKind::Sram6t).kdesign(&env());
        // Per state, off NMOS width = pull-down + access = 3.2 across 4
        // devices → kn ≈ 0.8; off PMOS width = 1.0 across 2 → kp ≈ 0.5.
        assert!(
            (k.kn - (SRAM_WL_PULL_DOWN + SRAM_WL_ACCESS) / 4.0).abs() < 1e-9,
            "kn={}",
            k.kn
        );
        assert!((k.kp - SRAM_WL_PULL_UP / 2.0).abs() < 1e-9, "kp={}", k.kp);
    }
}
