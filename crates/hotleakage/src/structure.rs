//! Leakage of whole microarchitectural structures.
//!
//! HotLeakage exploits the regularity of SRAM-based structures: a cache data
//! array is `rows × cols` identical 6T cells plus *edge logic* — decoders,
//! wordline drivers, sense amplifiers, precharge — whose leakage is modelled
//! from the same cell library. The functions here are pure in the
//! [`Environment`], so a caller reacting to temperature or voltage changes
//! just re-queries (the "recalculate dynamically" interface of §3.4).
//!
//! Leakage-control techniques deactivate *rows* (cache lines), so the salient
//! quantities are [`SramArray::row_power`] (what one standby line stops
//! leaking) and [`SramArray::edge_power`] (what stays awake regardless).

use serde::{Deserialize, Serialize};
use units::Watts;

use crate::cell::{Cell, CellKind};

/// Documented conversion: device counts are exact in `f64` (< 2^53).
fn count(n: usize) -> f64 {
    n as f64 // lint: allow(lossy-cast): usize device counts are exact in f64
}
use crate::error::ModelError;
use crate::Environment;

/// Edge-logic inventory of an SRAM array, in cell counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeLogic {
    /// Row-decoder NAND3 gates (one per row plus predecode).
    pub decoder_nand3: usize,
    /// Wordline driver inverters (one per row).
    pub wordline_inverters: usize,
    /// Sense amplifiers (one per bitline pair).
    pub sense_amps: usize,
    /// Precharge / equalisation devices, counted as inverter-equivalents.
    pub precharge_inverters: usize,
    /// Output drivers and mux gates, counted as NAND2-equivalents.
    pub output_nand2: usize,
}

impl EdgeLogic {
    /// CACTI-style edge inventory for an array of `rows × cols` bits.
    pub fn for_array(rows: usize, cols: usize) -> Self {
        EdgeLogic {
            // one NAND3 per row, plus ~1/8 of that again for predecode
            decoder_nand3: rows + rows / 8,
            wordline_inverters: rows,
            sense_amps: cols,
            precharge_inverters: cols / 2,
            output_nand2: cols / 4,
        }
    }

    /// Total edge-logic leakage power at `env`.
    pub fn leakage_power(&self, env: &Environment) -> Watts {
        let nand3 = Cell::new(CellKind::Nand3).leakage_power(env);
        let inv = Cell::new(CellKind::Inverter).leakage_power(env);
        let sa = Cell::new(CellKind::SenseAmp).leakage_power(env);
        let nand2 = Cell::new(CellKind::Nand2).leakage_power(env);
        count(self.decoder_nand3) * nand3
            + count(self.wordline_inverters) * inv
            + count(self.sense_amps) * sa
            + count(self.precharge_inverters) * inv
            + count(self.output_nand2) * nand2
    }

    /// Total transistor count of the edge logic.
    pub fn transistor_count(&self) -> usize {
        self.decoder_nand3 * 6
            + self.wordline_inverters * 2
            + self.sense_amps * 6
            + self.precharge_inverters * 2
            + self.output_nand2 * 4
    }
}

/// A regular SRAM array: `rows × cols` 6T cells plus edge logic.
///
/// ```
/// use hotleakage::{structure::SramArray, Environment, TechNode};
///
/// // 64 KB of data in 64 B lines: 1024 rows of 512 bits.
/// let data = SramArray::cache_data_array(1024, 512);
/// let env = Environment::new(TechNode::N70, 0.9, 383.15)?;
/// let total = data.leakage_power(&env);
/// let one_row = data.row_power(&env);
/// assert!(total > 1024.0 * one_row); // edge logic leaks on top of the cells
///
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramArray {
    rows: usize,
    cols: usize,
    edge: EdgeLogic,
}

impl SramArray {
    /// An array with an explicit edge inventory.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidGeometry`] if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, edge: EdgeLogic) -> Result<Self, ModelError> {
        if rows == 0 || cols == 0 {
            return Err(ModelError::InvalidGeometry(format!(
                "array must be non-empty, got {rows}x{cols}"
            )));
        }
        Ok(SramArray { rows, cols, edge })
    }

    /// A cache **data** array of `lines` lines of `bits_per_line` bits.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn cache_data_array(lines: usize, bits_per_line: usize) -> Self {
        Self::new(
            lines,
            bits_per_line,
            EdgeLogic::for_array(lines, bits_per_line),
        )
        // lint: allow(unwrap): dimensions are positive literals
        .expect("cache data array dimensions must be positive")
    }

    /// A cache **tag** array of `lines` entries of `tag_bits` bits
    /// (including status bits).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn cache_tag_array(lines: usize, tag_bits: usize) -> Self {
        Self::new(lines, tag_bits, EdgeLogic::for_array(lines, tag_bits))
            // lint: allow(unwrap): dimensions are positive literals
            .expect("cache tag array dimensions must be positive")
    }

    /// A register file of `regs` registers of `width` bits (HotLeakage's
    /// other built-in structure model).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn register_file(regs: usize, width: usize) -> Self {
        // Multi-ported cells are bigger; approximate the extra ports' access
        // devices by widening the edge inventory (2 extra sense-amp sets).
        let mut edge = EdgeLogic::for_array(regs, width);
        edge.sense_amps *= 3;
        edge.decoder_nand3 *= 3;
        // lint: allow(unwrap): dimensions are positive literals
        Self::new(regs, width, edge).expect("register file dimensions must be positive")
    }

    /// Number of rows (cache lines / registers).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The edge-logic inventory.
    pub fn edge(&self) -> &EdgeLogic {
        &self.edge
    }

    /// Leakage power of a single 6T cell at `env`.
    pub fn cell_power(&self, env: &Environment) -> Watts {
        Cell::new(CellKind::Sram6t).leakage_power(env)
    }

    /// Leakage power of one full row of cells (no edge logic).
    /// This is the quantum a leakage-control technique saves per standby
    /// line.
    pub fn row_power(&self, env: &Environment) -> Watts {
        count(self.cols) * self.cell_power(env)
    }

    /// Leakage power of the always-on edge logic.
    pub fn edge_power(&self, env: &Environment) -> Watts {
        self.edge.leakage_power(env)
    }

    /// Total leakage power of the array (all rows active + edge).
    pub fn leakage_power(&self, env: &Environment) -> Watts {
        count(self.rows) * self.row_power(env) + self.edge_power(env)
    }

    /// Total transistor count (cells + edge), for Butts–Sohi style
    /// cross-checks.
    pub fn transistor_count(&self) -> usize {
        self.rows * self.cols * 6 + self.edge.transistor_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn env() -> Environment {
        Environment::new(TechNode::N70, 0.9, 383.15).unwrap()
    }

    #[test]
    fn l1d_leakage_is_plausible() {
        // 64 KB L1D at 70 nm / 0.9 V / 110 C: published architectural
        // estimates put this in the tens-of-milliwatts to ~0.5 W band.
        let array = SramArray::cache_data_array(1024, 512);
        let p = array.leakage_power(&env());
        assert!(
            p > Watts::new(5e-3) && p < Watts::new(2.0),
            "L1D leakage {p} out of plausible band"
        );
    }

    #[test]
    fn row_power_times_rows_below_total() {
        let array = SramArray::cache_data_array(256, 512);
        let e = env();
        assert!(count(array.rows()) * array.row_power(&e) < array.leakage_power(&e));
    }

    #[test]
    fn tags_are_small_fraction_of_cache_leakage() {
        // Paper §5.3: tags account for ~5-10% of cache leakage energy.
        let e = env();
        let data = SramArray::cache_data_array(1024, 512);
        let tags = SramArray::cache_tag_array(1024, 30);
        let frac = tags.leakage_power(&e) / (tags.leakage_power(&e) + data.leakage_power(&e));
        assert!(
            frac > 0.03 && frac < 0.15,
            "tag fraction {frac} outside 5-10% band"
        );
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(SramArray::new(0, 512, EdgeLogic::for_array(1, 512)).is_err());
        assert!(SramArray::new(512, 0, EdgeLogic::for_array(512, 1)).is_err());
    }

    #[test]
    fn leakage_scales_with_rows() {
        let e = env();
        let small = SramArray::cache_data_array(256, 512);
        let big = SramArray::cache_data_array(1024, 512);
        let ratio = big.leakage_power(&e) / small.leakage_power(&e);
        assert!(
            ratio > 3.5 && ratio < 4.5,
            "4x rows should give ~4x leakage, got {ratio}"
        );
    }

    #[test]
    fn register_file_leaks() {
        let rf = SramArray::register_file(80, 64);
        assert!(rf.leakage_power(&env()) > Watts::ZERO);
    }

    #[test]
    fn hotter_array_leaks_more() {
        let array = SramArray::cache_data_array(1024, 512);
        let cool = Environment::new(TechNode::N70, 0.9, 358.15).unwrap(); // 85 C
        let hot = Environment::new(TechNode::N70, 0.9, 383.15).unwrap(); // 110 C
        let ratio = array.leakage_power(&hot) / array.leakage_power(&cool);
        assert!(
            ratio > 1.3,
            "25 C should raise leakage markedly, got {ratio}"
        );
    }

    #[test]
    fn transistor_count_dominated_by_cells() {
        let array = SramArray::cache_data_array(1024, 512);
        let cells = 1024 * 512 * 6;
        assert!(array.transistor_count() > cells);
        assert!((array.transistor_count() - cells) < cells / 10);
    }
}
