//! Reference curves for regenerating Fig. 1 of the paper.
//!
//! Fig. 1 compares the architectural model's unit leakage against
//! transistor-level circuit simulation across four sweeps: (a) aspect ratio
//! W/L, (b) supply voltage, (c) temperature, (d) threshold voltage. The
//! paper reports a "perfect match" on (a)–(c) and a deliberate divergence on
//! (d): beyond a threshold-voltage knee the *model* stops tracking the
//! simulated current because it only captures subthreshold conduction and
//! DIBL, while the reference includes mechanisms with different `V_th`
//! sensitivity.
//!
//! We cannot run Cadence here, so the **reference** is the substitution
//! documented in DESIGN.md: the same BSIM3 subthreshold physics evaluated
//! with the gate-tunnelling component handled *properly* (suppressed for an
//! off device), whereas the **model** adds the architectural gate-leakage
//! floor. The floor is what makes the model flatten at high `V_th` in
//! Fig. 1d, reproducing the published divergence; on sweeps (a)–(c) the two
//! agree to within the floor's (small) contribution.

use serde::{Deserialize, Serialize};

use crate::bsim3::{self, TransistorState};
use crate::gate_leakage;
use crate::technology::DeviceType;
use crate::Environment;

/// One point of a Fig. 1 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept input (W/L, V_dd in volts, T in kelvin, or V_th in volts).
    pub x: f64,
    /// Architectural-model current, amperes.
    pub model: f64,
    /// Circuit-simulation reference current, amperes.
    pub reference: f64,
}

impl SweepPoint {
    /// Relative error of the model against the reference.
    pub fn relative_error(&self) -> f64 {
        if self.reference == 0.0 {
            0.0
        } else {
            (self.model - self.reference).abs() / self.reference
        }
    }
}

/// Which Fig. 1 panel a sweep corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepKind {
    /// Fig. 1a: leakage vs. aspect ratio.
    AspectRatio,
    /// Fig. 1b: leakage vs. supply voltage.
    SupplyVoltage,
    /// Fig. 1c: leakage vs. temperature.
    Temperature,
    /// Fig. 1d: leakage vs. threshold voltage.
    ThresholdVoltage,
}

fn model_current(state: &TransistorState, env: &Environment) -> f64 {
    // The architectural model reports subthreshold + the per-µm gate floor
    // (evaluated at the device's gate width, invariant in Vth).
    let width_um = state.w_over_l * env.tech().feature_nm / 1000.0;
    bsim3::unit_leakage(state) + gate_leakage::gate_current(env, width_um)
}

fn reference_current(state: &TransistorState) -> f64 {
    // "Circuit-sim" reference: pure off-state channel current. Gate
    // tunnelling of an off device (V_gs = 0) is negligible, which is what a
    // SPICE run of the single-transistor testbench reports.
    bsim3::unit_leakage(state)
}

/// Generates one Fig. 1 sweep with `points` samples at operating point
/// `env` (the non-swept inputs are held at `env`'s values).
///
/// ```
/// use hotleakage::{validation, validation::SweepKind, Environment, TechNode};
///
/// let env = Environment::nominal(TechNode::N70);
/// let sweep = validation::sweep(&env, SweepKind::AspectRatio, 20);
/// assert_eq!(sweep.len(), 20);
/// // Fig. 1a: model matches the reference essentially perfectly.
/// assert!(sweep.iter().all(|p| p.relative_error() < 0.10));
/// ```
pub fn sweep(env: &Environment, kind: SweepKind, points: usize) -> Vec<SweepPoint> {
    let base = TransistorState::at(env, DeviceType::Nmos);
    (0..points)
        .map(|i| {
            let t = i as f64 / (points.max(2) - 1) as f64;
            let (x, state, env_i) = match kind {
                SweepKind::AspectRatio => {
                    let wl = 1.0 + t * 9.0; // 1..10
                    (wl, base.with_w_over_l(wl), *env)
                }
                SweepKind::SupplyVoltage => {
                    let vdd = 0.2 + t * (env.tech().vdd0 * 1.2 - 0.2);
                    (vdd, base.with_vdd(vdd), env.with_vdd(vdd).unwrap_or(*env))
                }
                SweepKind::Temperature => {
                    let t_k = 300.0 + t * 120.0; // 300..420 K
                    let e = env.with_temperature(t_k).unwrap_or(*env);
                    (t_k, TransistorState::at(&e, DeviceType::Nmos), e)
                }
                SweepKind::ThresholdVoltage => {
                    let vth = 0.10 + t * 0.50; // 0.10..0.60 V
                    (vth, base.with_vth(vth), *env)
                }
            };
            SweepPoint {
                x,
                model: model_current(&state, &env_i),
                reference: reference_current(&state),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn env() -> Environment {
        Environment::nominal(TechNode::N70)
    }

    #[test]
    fn fig1a_aspect_ratio_matches() {
        for p in sweep(&env(), SweepKind::AspectRatio, 16) {
            assert!(
                p.relative_error() < 0.10,
                "W/L={} err={}",
                p.x,
                p.relative_error()
            );
        }
    }

    #[test]
    fn fig1b_vdd_matches() {
        for p in sweep(&env(), SweepKind::SupplyVoltage, 16) {
            assert!(
                p.relative_error() < 0.10,
                "Vdd={} err={}",
                p.x,
                p.relative_error()
            );
        }
    }

    #[test]
    fn fig1c_temperature_matches() {
        for p in sweep(&env(), SweepKind::Temperature, 16) {
            assert!(
                p.relative_error() < 0.10,
                "T={} err={}",
                p.x,
                p.relative_error()
            );
        }
    }

    #[test]
    fn fig1d_model_floors_at_high_vth() {
        let points = sweep(&env(), SweepKind::ThresholdVoltage, 32);
        let last = points.last().unwrap();
        // At the top of the Vth sweep the reference keeps falling but the
        // model has flattened onto its gate-leakage floor.
        assert!(
            last.model > 5.0 * last.reference,
            "model {} should sit well above reference {} at Vth={}",
            last.model,
            last.reference,
            last.x
        );
        // At the bottom of the sweep they agree.
        let first = &points[0];
        assert!(
            first.relative_error() < 0.1,
            "low-Vth err={}",
            first.relative_error()
        );
        // And the model is monotone non-increasing then flat.
        for w in points.windows(2) {
            assert!(w[1].model <= w[0].model * 1.0001);
        }
    }

    #[test]
    fn sweeps_have_requested_length_and_finite_values() {
        for kind in [
            SweepKind::AspectRatio,
            SweepKind::SupplyVoltage,
            SweepKind::Temperature,
            SweepKind::ThresholdVoltage,
        ] {
            let s = sweep(&env(), kind, 8);
            assert_eq!(s.len(), 8);
            for p in s {
                assert!(p.model.is_finite() && p.model >= 0.0);
                assert!(p.reference.is_finite() && p.reference >= 0.0);
            }
        }
    }
}
