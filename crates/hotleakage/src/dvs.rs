//! Time-varying operating points: DVS schedules and leakage integration.
//!
//! The paper's §3 motivation for HotLeakage is that fixed-point models are
//! "intractable for any leakage studies that account for dynamically
//! varying temperature or involve dynamic voltage scaling". This module
//! provides the piece that makes such studies one-liners: a schedule of
//! operating-point segments and an integrator that re-evaluates leakage per
//! segment.

use serde::{Deserialize, Serialize};
use units::{Joules, Kelvin, Seconds, Volts, Watts};

use crate::error::ModelError;
use crate::structure::SramArray;
use crate::Environment;

/// One segment of a DVS/thermal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Supply voltage during the segment.
    pub vdd: Volts,
    /// Temperature during the segment.
    pub temperature: Kelvin,
    /// Segment duration.
    pub seconds: Seconds,
}

/// A piecewise-constant schedule of operating points.
///
/// ```
/// use hotleakage::dvs::{Schedule, Segment};
/// use hotleakage::{structure::SramArray, Environment, TechNode};
/// use units::{Joules, Kelvin, Seconds, Volts};
///
/// let schedule = Schedule::new(vec![
///     Segment { vdd: Volts::new(1.0), temperature: Kelvin::new(360.0), seconds: Seconds::new(1e-3) },
///     Segment { vdd: Volts::new(0.7), temperature: Kelvin::new(350.0), seconds: Seconds::new(1e-3) },
/// ])?;
/// let base = Environment::nominal(TechNode::N70);
/// let array = SramArray::cache_data_array(1024, 512);
/// let joules = schedule.leakage_energy(&base, &array)?;
/// assert!(joules > Joules::ZERO);
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    segments: Vec<Segment>,
}

impl Schedule {
    /// Builds a schedule from segments.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidGeometry`] if the schedule is empty or
    /// any duration is non-positive or non-finite.
    pub fn new(segments: Vec<Segment>) -> Result<Self, ModelError> {
        if segments.is_empty() {
            return Err(ModelError::InvalidGeometry(
                "schedule must have segments".into(),
            ));
        }
        for s in &segments {
            if !(s.seconds.is_finite() && s.seconds > Seconds::ZERO) {
                return Err(ModelError::InvalidGeometry(format!(
                    "segment duration {} must be positive",
                    s.seconds
                )));
            }
        }
        Ok(Schedule { segments })
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total schedule duration.
    pub fn duration(&self) -> Seconds {
        self.segments.iter().map(|s| s.seconds).sum()
    }

    /// Integrates the leakage energy of `array` over the schedule, with the
    /// full model re-evaluated per segment (temperature, DIBL, gate
    /// leakage, k_design all move). `base` supplies the node and any
    /// variation factor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any segment is an invalid operating point.
    pub fn leakage_energy(
        &self,
        base: &Environment,
        array: &SramArray,
    ) -> Result<Joules, ModelError> {
        let mut joules = Joules::ZERO;
        for s in &self.segments {
            let env = base
                .with_vdd(s.vdd.get())?
                .with_temperature(s.temperature.get())?;
            joules += array.leakage_power(&env) * s.seconds;
        }
        Ok(joules)
    }

    /// Average leakage power over the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any segment is an invalid operating point.
    pub fn average_power(
        &self,
        base: &Environment,
        array: &SramArray,
    ) -> Result<Watts, ModelError> {
        Ok(self.leakage_energy(base, array)? / self.duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn base() -> Environment {
        Environment::nominal(TechNode::N70)
    }

    fn array() -> SramArray {
        SramArray::cache_data_array(1024, 512)
    }

    fn seg(vdd: f64, t_k: f64, secs: f64) -> Segment {
        Segment {
            vdd: Volts::new(vdd),
            temperature: Kelvin::new(t_k),
            seconds: Seconds::new(secs),
        }
    }

    #[test]
    fn rejects_empty_and_nonpositive() {
        assert!(Schedule::new(vec![]).is_err());
        assert!(Schedule::new(vec![seg(1.0, 300.0, 0.0)]).is_err());
        assert!(Schedule::new(vec![seg(1.0, 300.0, f64::NAN)]).is_err());
    }

    #[test]
    fn constant_schedule_matches_direct_evaluation() {
        let s = Schedule::new(vec![seg(0.9, 383.15, 2e-3)]).expect("valid");
        let env = Environment::new(TechNode::N70, 0.9, 383.15).expect("valid");
        let direct = array().leakage_power(&env) * Seconds::new(2e-3);
        let via = s.leakage_energy(&base(), &array()).expect("valid");
        assert!((via - direct).get().abs() < 1e-15);
    }

    #[test]
    fn dvs_saves_leakage_energy() {
        let always_high = Schedule::new(vec![seg(1.0, 360.0, 2e-3)]).expect("valid");
        let scaled =
            Schedule::new(vec![seg(1.0, 360.0, 1e-3), seg(0.6, 360.0, 1e-3)]).expect("valid");
        let high = always_high
            .leakage_energy(&base(), &array())
            .expect("valid");
        let less = scaled.leakage_energy(&base(), &array()).expect("valid");
        assert!(
            less < high * 0.85,
            "halving time at 0.6 V must save: {less} vs {high}"
        );
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let s = Schedule::new(vec![seg(0.9, 360.0, 1e-3), seg(0.7, 340.0, 3e-3)]).expect("valid");
        let e = s.leakage_energy(&base(), &array()).expect("valid");
        let p = s.average_power(&base(), &array()).expect("valid");
        assert!((p - e / Seconds::new(4e-3)).get().abs() < 1e-12);
    }

    #[test]
    fn invalid_segment_point_is_reported() {
        let s = Schedule::new(vec![seg(-0.5, 300.0, 1e-3)])
            .expect("schedule builds; the operating point fails later");
        assert!(s.leakage_energy(&base(), &array()).is_err());
    }
}
