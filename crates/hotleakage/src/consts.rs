//! Physical constants used throughout the leakage model.
//!
//! All values are CODATA 2018 exact or recommended values, in SI units.

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const ELECTRON_CHARGE: f64 = 1.602_176_634e-19;

/// Vacuum permittivity, F/m.
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;

/// Relative permittivity of SiO₂ gate oxide.
pub const EPSILON_R_SIO2: f64 = 3.9;

/// Reference temperature for parameter tables, K (27 °C / 300 K).
pub const T_REF: f64 = 300.0;

/// Thermal voltage `kT/q` at temperature `t_k`, in volts.
///
/// ```
/// let vt = hotleakage::consts::thermal_voltage(300.0);
/// assert!((vt - 0.025852).abs() < 1e-5);
/// ```
pub fn thermal_voltage(t_k: f64) -> f64 {
    BOLTZMANN * t_k / ELECTRON_CHARGE
}

/// Gate-oxide capacitance per unit area for oxide thickness `tox_m` (metres),
/// in F/m².
///
/// ```
/// // 1.2 nm oxide at 70 nm node
/// let cox = hotleakage::consts::oxide_capacitance(1.2e-9);
/// assert!(cox > 0.02 && cox < 0.04);
/// ```
pub fn oxide_capacitance(tox_m: f64) -> f64 {
    EPSILON_0 * EPSILON_R_SIO2 / tox_m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_scales_linearly() {
        assert!((thermal_voltage(600.0) / thermal_voltage(300.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oxide_capacitance_inverse_in_thickness() {
        let thin = oxide_capacitance(1.2e-9);
        let thick = oxide_capacitance(4.8e-9);
        assert!((thin / thick - 4.0).abs() < 1e-9);
    }
}
