//! Direct-tunnelling gate leakage and the GIDL limit on reverse body bias.
//!
//! An explicit equation for gate tunnelling is (per the paper, §3.2)
//! "very difficult and also unnecessary" at the architecture level, so —
//! like HotLeakage — this module uses a curve fit anchored to the ITRS-2001
//! projection the paper quotes: **40 nA/µm of gate width at the 70 nm node,
//! 1.2 nm oxide, 0.9 V supply, 300 K**.
//!
//! The fit captures the dependences the paper lists:
//!
//! * **strong** (exponential) in oxide thickness `t_ox` — direct tunnelling
//!   gains roughly a decade per 0.2 nm of thinning;
//! * **strong** (power-law) in supply voltage;
//! * **weak** (linear) in temperature.

use crate::Environment;

/// Gate-leakage calibration anchor: 40 nA per µm of gate width.
pub const ANCHOR_CURRENT_PER_UM: f64 = 40e-9;
/// Oxide thickness at the calibration anchor, metres.
pub const ANCHOR_TOX: f64 = 1.2e-9;
/// Supply voltage at the calibration anchor, volts.
pub const ANCHOR_VDD: f64 = 0.9;
/// Temperature at the calibration anchor, kelvin.
pub const ANCHOR_TEMP: f64 = 300.0;

/// Decades of tunnelling current gained per metre of oxide thinning
/// (≈ one decade per 0.2 nm).
const DECADES_PER_METRE: f64 = 1.0 / 0.2e-9;
/// Supply-voltage power-law exponent of the tunnelling fit.
const VDD_EXPONENT: f64 = 4.0;
/// Weak linear temperature coefficient, 1/K.
const TEMP_COEFF: f64 = 1.0e-3;

/// Gate tunnelling current for `width_um` micrometres of gate width at
/// operating point `env`, in amperes.
///
/// The current scales linearly with gate width, exponentially with oxide
/// thinning relative to the 1.2 nm anchor, with the fourth power of supply
/// voltage, and weakly (linearly) with temperature. At thick oxides
/// (≥ 2.5 nm, i.e. 100 nm node and older) the value is negligible, matching
/// the paper's statement that gate leakage only "becomes dominant" at 70 nm.
///
/// ```
/// use hotleakage::{gate_leakage, Environment, TechNode};
///
/// let env = Environment::new(TechNode::N70, 0.9, 300.0)?;
/// let i = gate_leakage::gate_current(&env, 1.0);
/// assert!((i - 40e-9).abs() / 40e-9 < 1e-9, "calibration anchor");
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
pub fn gate_current(env: &Environment, width_um: f64) -> f64 {
    if width_um <= 0.0 || env.vdd() <= 0.0 {
        return 0.0;
    }
    let tox = env.tech().tox;
    let tox_factor = 10f64.powf((ANCHOR_TOX - tox) * DECADES_PER_METRE);
    let vdd_factor = (env.vdd() / ANCHOR_VDD).powf(VDD_EXPONENT);
    let temp_factor = 1.0 + TEMP_COEFF * (env.temperature_k() - ANCHOR_TEMP);
    env.variation_factor()
        * ANCHOR_CURRENT_PER_UM
        * width_um
        * tox_factor
        * vdd_factor
        * temp_factor.max(0.0)
}

/// Reverse-body-bias effectiveness limit due to gate-induced drain leakage.
///
/// GIDL current rises when the substrate of an NMOS is biased negative (or a
/// PMOS substrate positive), eroding the subthreshold savings RBB buys. The
/// paper cites this (plus manufacturing difficulty) as the reason it does not
/// study RBB at 70 nm. This function returns the *effective* leakage
/// reduction factor RBB achieves once GIDL is accounted for: the ideal
/// body-effect reduction saturates, and beyond roughly 0.5 V of bias GIDL
/// gives the increase back.
///
/// `body_bias_v` is the magnitude of the reverse bias in volts.
///
/// ```
/// use hotleakage::{gate_leakage, Environment, TechNode};
/// let env = Environment::nominal(TechNode::N70);
/// let mild = gate_leakage::rbb_effective_reduction(&env, 0.3);
/// let hard = gate_leakage::rbb_effective_reduction(&env, 1.0);
/// assert!(mild < 1.0);            // some savings
/// assert!(hard > mild);           // GIDL claws savings back
/// ```
pub fn rbb_effective_reduction(env: &Environment, body_bias_v: f64) -> f64 {
    if body_bias_v <= 0.0 {
        return 1.0;
    }
    // Body effect: ΔVth ≈ γ·√bias raises Vth, cutting subthreshold leakage
    // exponentially (γ ≈ 0.15 V/√V at 70 nm, weaker at short channels).
    let gamma = 0.15 * (env.tech().feature_nm / 70.0).sqrt();
    let delta_vth = gamma * body_bias_v.sqrt();
    let vt = env.thermal_voltage();
    let n = env.tech().nmos.swing_n;
    let sub_reduction = (-delta_vth / (n * vt)).exp();
    // GIDL: grows exponentially with bias once past ~0.4 V, scaled so it
    // dominates at ≥ 1 V of reverse bias at 70 nm (thin oxide).
    let gidl_scale = 0.02 * (ANCHOR_TOX / env.tech().tox).powi(2);
    let gidl = gidl_scale * ((body_bias_v / 0.35).exp() - 1.0);
    (sub_reduction + gidl).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    #[test]
    fn anchor_point_is_exact() {
        let env = Environment::new(TechNode::N70, 0.9, 300.0).unwrap();
        let i = gate_current(&env, 1.0);
        assert!((i - ANCHOR_CURRENT_PER_UM).abs() < 1e-15);
    }

    #[test]
    fn linear_in_width() {
        let env = Environment::new(TechNode::N70, 0.9, 300.0).unwrap();
        assert!((gate_current(&env, 3.0) / gate_current(&env, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negligible_at_older_nodes() {
        let old = Environment::nominal(TechNode::N180);
        let new = Environment::nominal(TechNode::N70);
        // 4.5 nm oxide vs 1.2 nm: > 15 decades less tunnelling per µm even
        // after the higher Vdd is accounted for.
        assert!(gate_current(&old, 1.0) < 1e-6 * gate_current(&new, 1.0));
    }

    #[test]
    fn strong_vdd_dependence() {
        let hi = Environment::new(TechNode::N70, 1.0, 300.0).unwrap();
        let lo = Environment::new(TechNode::N70, 0.5, 300.0).unwrap();
        let ratio = gate_current(&hi, 1.0) / gate_current(&lo, 1.0);
        assert!(
            ratio > 10.0,
            "gate leakage must collapse at retention voltages, ratio={ratio}"
        );
    }

    #[test]
    fn weak_temperature_dependence() {
        let cold = Environment::new(TechNode::N70, 0.9, 300.0).unwrap();
        let hot = Environment::new(TechNode::N70, 0.9, 383.15).unwrap();
        let ratio = gate_current(&hot, 1.0) / gate_current(&cold, 1.0);
        assert!(
            ratio > 1.0 && ratio < 1.2,
            "T dependence should be weak, ratio={ratio}"
        );
    }

    #[test]
    fn zero_width_or_gated_gives_zero() {
        let env = Environment::nominal(TechNode::N70);
        assert_eq!(gate_current(&env, 0.0), 0.0);
    }

    #[test]
    fn rbb_has_sweet_spot_then_gidl_takes_over() {
        let env = Environment::nominal(TechNode::N70);
        let no_bias = rbb_effective_reduction(&env, 0.0);
        let sweet = rbb_effective_reduction(&env, 0.4);
        let over = rbb_effective_reduction(&env, 1.5);
        assert_eq!(no_bias, 1.0);
        assert!(
            sweet < 0.6,
            "moderate RBB should save meaningfully, got {sweet}"
        );
        assert!(over > sweet, "hard bias loses to GIDL");
    }

    #[test]
    fn rbb_less_effective_at_70nm_than_180nm() {
        // The paper's reason for skipping RBB: GIDL limits it at future nodes.
        let new = rbb_effective_reduction(&Environment::nominal(TechNode::N70), 0.5);
        let old = rbb_effective_reduction(&Environment::nominal(TechNode::N180), 0.5);
        assert!(
            new > old,
            "70nm RBB ({new}) should retain less savings than 180nm ({old})"
        );
    }
}
