//! # hotleakage
//!
//! A from-scratch Rust reimplementation of **HotLeakage**, the
//! architectural-level model of subthreshold and gate leakage introduced by
//! Zhang et al. (UVA CS-2003-05) and used by Parikh et al. in *"Comparison of
//! State-Preserving vs. Non-State-Preserving Leakage Control in Caches"*
//! (WDDD 2003 / DATE 2004).
//!
//! The model follows the Butts–Sohi abstraction
//!
//! ```text
//! P_static = V_dd · N_cells · I_cell                      (paper Eq. 4)
//! I_cell   = n_n · k_n · I_n  +  n_p · k_p · I_p          (paper Eq. 3)
//! ```
//!
//! but computes the per-transistor *unit leakage* `I_n`/`I_p` **dynamically**
//! from the BSIM3 v3.2 subthreshold equation (paper Eq. 2), so that
//! temperature, supply voltage, and threshold voltage can change at runtime
//! (DVS, thermal drift, drowsy retention voltages) and leakage is recomputed
//! on the fly. It adds gate (direct-tunnelling) leakage, a GIDL limit flag
//! for reverse body bias, and inter-die parameter variation.
//!
//! ## Quick example
//!
//! ```
//! use hotleakage::{Environment, TechNode, structure::SramArray};
//!
//! // A 64 KB, 2-way, 64 B-line L1 data array at 70 nm, 0.9 V, 110 °C.
//! let env = Environment::new(TechNode::N70, 0.9, 383.15)?;
//! let array = SramArray::cache_data_array(1024, 512);
//! let watts = array.leakage_power(&env);
//! assert!(watts > units::Watts::ZERO);
//! # Ok::<(), hotleakage::ModelError>(())
//! ```
//!
//! ## Modules
//!
//! * [`technology`] — per-node (180/130/100/70 nm) BSIM3 parameter tables.
//! * [`bsim3`] — the unit-leakage equation (paper Eq. 2) and its inputs.
//! * [`gate_leakage`] — direct-tunnelling gate leakage (40 nA/µm target at
//!   70 nm / 1.2 nm t_ox / 0.9 V / 300 K) and the GIDL limit for RBB.
//! * [`kdesign`] — the double-`k_design` (k_n, k_p) circuit-topology factors
//!   derived by enumerating gate input states (paper Eqs. 5–8, Fig. 2).
//! * [`cell`] — leakage of individual cells (SRAM 6T, NAND, NOR, inverter,
//!   sense amplifier) via paper Eq. 3.
//! * [`variation`] — inter-die parameter variation (Gaussian sampling of
//!   L, t_ox, V_dd, V_th; paper §3.3).
//! * [`structure`] — leakage of whole microarchitectural structures (cache
//!   data/tag arrays, edge logic, register files).
//! * [`validation`] — "circuit-simulation" reference curves used to
//!   regenerate Fig. 1a–d of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsim3;
pub mod butts_sohi;
pub mod cell;
pub mod consts;
pub mod dvs;
pub mod error;
pub mod gate_leakage;
pub mod kdesign;
pub mod structure;
pub mod technology;
pub mod thermal;
pub mod validation;
pub mod variation;

pub use bsim3::{unit_leakage, TransistorState};
pub use cell::{Cell, CellKind};
pub use error::ModelError;
pub use technology::{DeviceParams, DeviceType, TechNode, TechParams};
pub use variation::{VariationConfig, VariationSpec};

use serde::{Deserialize, Serialize};

/// The operating point at which leakage is evaluated.
///
/// An `Environment` bundles a technology node with the *current* supply
/// voltage and temperature. Leakage-control techniques that scale `V_dd`
/// (drowsy caches, DVS) or studies that track temperature simply construct a
/// new `Environment` — all downstream leakage queries are pure functions of
/// it, which is exactly the "recalculate leakage currents dynamically"
/// ability the paper calls out.
///
/// ```
/// use hotleakage::{Environment, TechNode};
///
/// let nominal = Environment::new(TechNode::N70, 0.9, 383.15)?;
/// let drowsy = nominal.with_vdd(nominal.node().vth_n() * 1.5)?;
/// assert!(drowsy.vdd() < nominal.vdd());
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    node: TechNode,
    vdd: f64,
    temperature_k: f64,
    /// Optional mean leakage multiplier from inter-die parameter variation
    /// (1.0 when variation is not modelled).
    variation_factor: f64,
}

impl Environment {
    /// Creates an operating point for `node` at supply `vdd` (volts) and
    /// `temperature_k` (kelvin).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidVdd`] if `vdd` is not a positive, finite
    /// voltage below 2× the node's default supply, and
    /// [`ModelError::InvalidTemperature`] if `temperature_k` is outside
    /// 200 K – 500 K (the range the curve fits are valid over).
    pub fn new(node: TechNode, vdd: f64, temperature_k: f64) -> Result<Self, ModelError> {
        if !(vdd.is_finite() && vdd > 0.0 && vdd <= 2.0 * node.params().vdd0) {
            return Err(ModelError::InvalidVdd(vdd));
        }
        if !(temperature_k.is_finite() && (200.0..=500.0).contains(&temperature_k)) {
            return Err(ModelError::InvalidTemperature(temperature_k));
        }
        Ok(Self {
            node,
            vdd,
            temperature_k,
            variation_factor: 1.0,
        })
    }

    /// Operating point at the node's default supply voltage and 300 K.
    pub fn nominal(node: TechNode) -> Self {
        Self {
            node,
            vdd: node.params().vdd0,
            temperature_k: 300.0,
            variation_factor: 1.0,
        }
    }

    /// Returns a copy of this environment at a different supply voltage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::new`].
    pub fn with_vdd(&self, vdd: f64) -> Result<Self, ModelError> {
        let mut env = Self::new(self.node, vdd, self.temperature_k)?;
        env.variation_factor = self.variation_factor;
        Ok(env)
    }

    /// Returns a copy of this environment at a different temperature.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::new`].
    pub fn with_temperature(&self, temperature_k: f64) -> Result<Self, ModelError> {
        let mut env = Self::new(self.node, self.vdd, temperature_k)?;
        env.variation_factor = self.variation_factor;
        Ok(env)
    }

    /// Returns a copy with the inter-die variation factor produced by
    /// [`variation::mean_leakage_factor`] applied multiplicatively to all
    /// leakage queries.
    pub fn with_variation_factor(&self, factor: f64) -> Self {
        let mut env = *self;
        env.variation_factor = factor.max(0.0);
        env
    }

    /// The technology node of this operating point.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// The technology parameter table of this operating point.
    pub fn tech(&self) -> &'static TechParams {
        self.node.params()
    }

    /// Current supply voltage in volts.
    pub fn vdd_volts(&self) -> units::Volts {
        units::Volts::new(self.vdd)
    }

    /// Supply voltage, volts (raw, for the BSIM3 fit internals).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Current temperature in kelvin.
    pub fn temperature_k(&self) -> f64 {
        self.temperature_k
    }

    /// Junction temperature as a typed quantity.
    pub fn temperature(&self) -> units::Kelvin {
        units::Kelvin::new(self.temperature_k)
    }

    /// Current temperature in degrees Celsius.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_k - 273.15
    }

    /// The inter-die variation leakage multiplier (1.0 when unmodelled).
    pub fn variation_factor(&self) -> f64 {
        self.variation_factor
    }

    /// Thermal voltage `kT/q` at this temperature, in volts.
    pub fn thermal_voltage(&self) -> f64 {
        consts::BOLTZMANN * self.temperature_k / consts::ELECTRON_CHARGE
    }

    /// Unit (W/L = 1) subthreshold leakage of an NMOS device at this
    /// operating point, in amperes.
    pub fn unit_leakage_n(&self) -> f64 {
        self.variation_factor * bsim3::unit_leakage(&TransistorState::at(self, DeviceType::Nmos))
    }

    /// Unit (W/L = 1) subthreshold leakage of a PMOS device at this
    /// operating point, in amperes.
    pub fn unit_leakage_p(&self) -> f64 {
        self.variation_factor * bsim3::unit_leakage(&TransistorState::at(self, DeviceType::Pmos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_environment_matches_node_defaults() {
        let env = Environment::nominal(TechNode::N70);
        assert_eq!(env.vdd(), 1.0);
        assert_eq!(env.temperature_k(), 300.0);
        assert_eq!(env.node(), TechNode::N70);
    }

    #[test]
    fn rejects_nonsensical_vdd() {
        assert!(Environment::new(TechNode::N70, -1.0, 300.0).is_err());
        assert!(Environment::new(TechNode::N70, 0.0, 300.0).is_err());
        assert!(Environment::new(TechNode::N70, f64::NAN, 300.0).is_err());
        assert!(Environment::new(TechNode::N70, 5.0, 300.0).is_err());
    }

    #[test]
    fn rejects_nonsensical_temperature() {
        assert!(Environment::new(TechNode::N70, 0.9, 100.0).is_err());
        assert!(Environment::new(TechNode::N70, 0.9, 700.0).is_err());
        assert!(Environment::new(TechNode::N70, 0.9, f64::INFINITY).is_err());
    }

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let env = Environment::new(TechNode::N70, 0.9, 300.0).unwrap();
        let vt = env.thermal_voltage();
        assert!(
            (vt - 0.02585).abs() < 1e-4,
            "kT/q at 300 K should be ~25.85 mV, got {vt}"
        );
    }

    #[test]
    fn leakage_increases_with_temperature() {
        let cold = Environment::new(TechNode::N70, 0.9, 300.0).unwrap();
        let hot = Environment::new(TechNode::N70, 0.9, 383.15).unwrap();
        assert!(hot.unit_leakage_n() > 2.0 * cold.unit_leakage_n());
        assert!(hot.unit_leakage_p() > 2.0 * cold.unit_leakage_p());
    }

    #[test]
    fn leakage_decreases_with_vdd_via_dibl() {
        let full = Environment::new(TechNode::N70, 1.0, 300.0).unwrap();
        let drowsy = Environment::new(TechNode::N70, 0.3, 300.0).unwrap();
        let ratio = drowsy.unit_leakage_n() / full.unit_leakage_n();
        assert!(
            ratio < 0.25,
            "DIBL should cut subthreshold leakage sharply at retention voltage; ratio={ratio}"
        );
    }

    #[test]
    fn variation_factor_scales_leakage() {
        let env = Environment::nominal(TechNode::N70);
        let varied = env.with_variation_factor(1.3);
        let r = varied.unit_leakage_n() / env.unit_leakage_n();
        assert!((r - 1.3).abs() < 1e-12);
    }

    #[test]
    fn environments_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Environment>();
    }
}
