//! A lumped thermal-RC model coupling power to temperature.
//!
//! Leakage depends exponentially on temperature, and temperature depends on
//! total power — a positive feedback loop that the paper's authors study in
//! their temperature-aware work (Skadron et al., cited as [28]/[29]). This
//! module provides the minimal closed-loop companion to the leakage model:
//! a single thermal RC node
//!
//! ```text
//! C_th · dT/dt = P(T) − (T − T_ambient) / R_th
//! ```
//!
//! integrated explicitly, where `P(T)` may include the leakage model's own
//! temperature dependence. It exposes both transient stepping and the
//! steady-state fixed point (or detection of thermal runaway, when the
//! leakage feedback beats the package's ability to remove heat).

use serde::{Deserialize, Serialize};
use units::{Kelvin, Seconds, Watts};

use crate::error::ModelError;

/// Package/die thermal parameters (lumped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Thermal resistance junction→ambient, K/W.
    pub r_th: f64,
    /// Thermal capacitance of the die + spreader, J/K.
    pub c_th: f64,
    /// Ambient temperature.
    pub t_ambient: Kelvin,
}

impl ThermalParams {
    /// A typical early-2000s desktop package: 0.8 K/W to a 45 °C internal
    /// ambient, ~120 J/K.
    pub fn desktop() -> Self {
        ThermalParams {
            r_th: 0.8,
            c_th: 120.0,
            t_ambient: Kelvin::new(318.15),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidGeometry`] on non-positive R/C or a
    /// non-physical ambient.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !(self.r_th.is_finite() && self.r_th > 0.0) {
            return Err(ModelError::InvalidGeometry(format!(
                "r_th {} must be positive",
                self.r_th
            )));
        }
        if !(self.c_th.is_finite() && self.c_th > 0.0) {
            return Err(ModelError::InvalidGeometry(format!(
                "c_th {} must be positive",
                self.c_th
            )));
        }
        if !(200.0..=400.0).contains(&self.t_ambient.get()) {
            return Err(ModelError::InvalidTemperature(self.t_ambient.get()));
        }
        Ok(())
    }
}

/// Outcome of a steady-state solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SteadyState {
    /// Converged to a stable junction temperature.
    Stable(Kelvin),
    /// The leakage feedback outruns heat removal: thermal runaway (the
    /// temperature at which the search gave up is attached).
    Runaway(Kelvin),
}

/// A lumped thermal node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalNode {
    params: ThermalParams,
    temperature: Kelvin,
}

impl ThermalNode {
    /// A node starting at ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the parameters are invalid.
    pub fn new(params: ThermalParams) -> Result<Self, ModelError> {
        params.validate()?;
        Ok(ThermalNode {
            params,
            temperature: params.t_ambient,
        })
    }

    /// Current junction temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// The thermal parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Advances the node by `dt` while dissipating `power(T)` (the closure
    /// is evaluated at the current temperature so leakage feedback is
    /// captured). Returns the new temperature.
    pub fn step<P: FnMut(Kelvin) -> Watts>(&mut self, dt: Seconds, mut power: P) -> Kelvin {
        let p = power(self.temperature);
        let cooling = Watts::new((self.temperature - self.params.t_ambient) / self.params.r_th);
        self.temperature = self.temperature + ((p - cooling) * dt).get() / self.params.c_th;
        // The die cannot cool below ambient without active cooling.
        if self.temperature < self.params.t_ambient {
            self.temperature = self.params.t_ambient;
        }
        self.temperature
    }

    /// Finds the steady-state temperature for a temperature-dependent power
    /// curve by damped fixed-point iteration of `T = T_amb + R·P(T)`.
    ///
    /// Declares [`SteadyState::Runaway`] if the fixed point exceeds
    /// `t_limit` (e.g. 500 K, the validity edge of the leakage fits).
    pub fn steady_state<P: FnMut(Kelvin) -> Watts>(
        &self,
        mut power: P,
        t_limit: Kelvin,
    ) -> SteadyState {
        let mut t = self.params.t_ambient;
        for _ in 0..500 {
            let target = self.params.t_ambient + self.params.r_th * power(t).get();
            let next = t + 0.3 * (target - t);
            if next > t_limit {
                return SteadyState::Runaway(next);
            }
            if (next - t).abs() < 1e-6 {
                return SteadyState::Stable(next);
            }
            t = next;
        }
        SteadyState::Stable(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::SramArray;
    use crate::{Environment, TechNode};

    #[test]
    fn constant_power_reaches_rc_fixed_point() {
        let node = ThermalNode::new(ThermalParams::desktop()).expect("valid");
        match node.steady_state(|_| Watts::new(50.0), Kelvin::new(500.0)) {
            SteadyState::Stable(t) => {
                // T = T_amb + R*P = 318.15 + 0.8*50 = 358.15
                assert!((t - Kelvin::new(358.15)).abs() < 1e-3, "t={t}");
            }
            SteadyState::Runaway(t) => panic!("50 W must be stable, ran away at {t}"),
        }
    }

    #[test]
    fn transient_approaches_steady_state_monotonically() {
        let mut node = ThermalNode::new(ThermalParams::desktop()).expect("valid");
        let mut prev = node.temperature();
        for _ in 0..60_000 {
            // 600 s ≈ 6 RC time constants
            let t = node.step(Seconds::new(0.01), |_| Watts::new(50.0));
            assert!(
                t.get() >= prev.get() - 1e-9,
                "heating transient must be monotone"
            );
            prev = t;
        }
        assert!(
            (prev - Kelvin::new(358.15)).abs() < 0.5,
            "converged to {prev}"
        );
    }

    #[test]
    fn leakage_feedback_raises_steady_state_above_open_loop() {
        // Power = 40 W of dynamic + the L1D-array leakage at temperature T:
        // the closed loop must settle hotter than ignoring the feedback.
        let array = SramArray::cache_data_array(1024, 512);
        let base = Environment::nominal(TechNode::N70);
        let node = ThermalNode::new(ThermalParams::desktop()).expect("valid");
        // 64x the L1D stands in for all on-chip SRAM at the same Vt.
        let leak = |t: Kelvin| -> Watts {
            let env = base
                .with_temperature(t.get().clamp(250.0, 450.0))
                .expect("valid");
            64.0 * array.leakage_power(&env)
        };
        let open_loop = 318.15 + 0.8 * (40.0 + leak(Kelvin::new(318.15)).get());
        match node.steady_state(|t| Watts::new(40.0) + leak(t), Kelvin::new(500.0)) {
            SteadyState::Stable(t) => {
                assert!(
                    t.get() > open_loop + 0.5,
                    "feedback must add heat: {t} vs {open_loop}"
                );
            }
            SteadyState::Runaway(t) => panic!("this load must be stable, ran away at {t}"),
        }
    }

    #[test]
    fn weak_package_runs_away() {
        // A 12 K/W package with strong exponential leakage: runaway.
        let array = SramArray::cache_data_array(1024, 512);
        let base = Environment::nominal(TechNode::N70);
        let node = ThermalNode::new(ThermalParams {
            r_th: 12.0,
            c_th: 20.0,
            t_ambient: Kelvin::new(318.15),
        })
        .expect("valid");
        let result = node.steady_state(
            |t| {
                let env = base
                    .with_temperature(t.get().clamp(250.0, 449.0))
                    .expect("valid");
                Watts::new(30.0) + 512.0 * array.leakage_power(&env)
            },
            Kelvin::new(450.0),
        );
        assert!(matches!(result, SteadyState::Runaway(_)), "got {result:?}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ThermalNode::new(ThermalParams {
            r_th: 0.0,
            c_th: 1.0,
            t_ambient: Kelvin::new(300.0)
        })
        .is_err());
        assert!(ThermalNode::new(ThermalParams {
            r_th: 1.0,
            c_th: -1.0,
            t_ambient: Kelvin::new(300.0)
        })
        .is_err());
        assert!(ThermalNode::new(ThermalParams {
            r_th: 1.0,
            c_th: 1.0,
            t_ambient: Kelvin::new(500.0)
        })
        .is_err());
    }
}
