//! The original Butts–Sohi static-power model, for comparison.
//!
//! Butts and Sohi (MICRO-33, 2000) proposed
//!
//! ```text
//! P_static = V_CC · N · k_design · Î_leak        (paper Eq. 1)
//! ```
//!
//! with a *single* `k_design` and a unit leakage `Î_leak` computed **once**
//! at fixed threshold voltage and temperature. The paper's §3 critique —
//! the reason HotLeakage exists — is that `k_design` in fact varies with
//! temperature, supply voltage, threshold voltage and channel length, so a
//! fixed-point calibration goes wrong as soon as any of them moves (DVS,
//! thermal drift, drowsy retention voltages).
//!
//! This module implements the fixed-point model faithfully and exposes the
//! error it accrues away from its calibration point, quantifying the
//! paper's argument.

use serde::{Deserialize, Serialize};

use crate::cell::{Cell, CellKind};
use crate::Environment;

/// A Butts–Sohi model calibrated for one cell type at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ButtsSohiModel {
    /// The cell kind the model was calibrated for.
    pub kind: CellKind,
    /// The single `k_design` factor folded from the calibration point.
    pub k_design: f64,
    /// The frozen unit leakage `Î_leak` at calibration, amperes.
    pub unit_leakage: f64,
    /// Transistor count per cell.
    pub transistors: usize,
    /// Calibration supply voltage, volts.
    pub calibrated_vdd: f64,
    /// Calibration temperature, kelvin.
    pub calibrated_temp_k: f64,
}

impl ButtsSohiModel {
    /// Calibrates the single-`k_design` model so it matches HotLeakage
    /// exactly at `env`.
    pub fn calibrate(kind: CellKind, env: &Environment) -> Self {
        let cell = Cell::new(kind);
        let (n_n, n_p) = kind.device_counts();
        let transistors = n_n + n_p;
        let unit_leakage = env.unit_leakage_n();
        let i_cell = cell.leakage_current(env);
        // Fold everything (P/N asymmetry, stacking, sizing, gate leakage)
        // into the one factor: I_cell = N · k_design · Î_leak.
        let k_design = i_cell / (transistors as f64 * unit_leakage);
        ButtsSohiModel {
            kind,
            k_design,
            unit_leakage,
            transistors,
            calibrated_vdd: env.vdd(),
            calibrated_temp_k: env.temperature_k(),
        }
    }

    /// Static power the fixed model predicts for `n_cells` cells at supply
    /// `vdd` — note `Î_leak` and `k_design` do **not** move with the
    /// operating point; only the `V_CC` prefactor does (Eq. 1).
    pub fn predicted_power(&self, n_cells: usize, vdd: f64) -> f64 {
        vdd * n_cells as f64 * self.transistors as f64 * self.k_design * self.unit_leakage
    }

    /// Relative error of the fixed model against HotLeakage at operating
    /// point `env` (0 at the calibration point, growing as `env` departs
    /// from it).
    pub fn relative_error(&self, env: &Environment) -> f64 {
        let truth = Cell::new(self.kind).leakage_power(env).get();
        if truth <= 0.0 {
            return 0.0;
        }
        let predicted = self.predicted_power(1, env.vdd());
        (predicted - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn calib_env() -> Environment {
        Environment::new(TechNode::N70, 1.0, 300.0).expect("valid operating point")
    }

    #[test]
    fn exact_at_calibration_point() {
        let env = calib_env();
        let model = ButtsSohiModel::calibrate(CellKind::Sram6t, &env);
        assert!(model.relative_error(&env) < 1e-12);
    }

    #[test]
    fn kdesign_is_order_unity() {
        let model = ButtsSohiModel::calibrate(CellKind::Sram6t, &calib_env());
        assert!(
            model.k_design > 0.1 && model.k_design < 3.0,
            "k={}",
            model.k_design
        );
    }

    #[test]
    fn error_grows_with_temperature_departure() {
        // The paper's point: leakage is exponential in T but the fixed model
        // cannot follow it.
        let model = ButtsSohiModel::calibrate(CellKind::Sram6t, &calib_env());
        let mild = calib_env().with_temperature(330.0).expect("valid");
        let hot = calib_env().with_temperature(383.15).expect("valid");
        let e_mild = model.relative_error(&mild);
        let e_hot = model.relative_error(&hot);
        assert!(e_mild > 0.3, "30 K off calibration already costs {e_mild}");
        assert!(e_hot > e_mild, "and it worsens: {e_hot}");
        // The frozen model cannot follow the ~8x exponential growth: it
        // underestimates the true leakage by more than 80 %.
        assert!(
            e_hot > 0.8,
            "at 110 C the fixed model misses {e_hot} of the truth"
        );
    }

    #[test]
    fn error_grows_under_dvs() {
        // Lowering Vdd only scales the V_CC prefactor in the fixed model,
        // missing the exponential DIBL reduction entirely.
        let model = ButtsSohiModel::calibrate(CellKind::Sram6t, &calib_env());
        let scaled = calib_env().with_vdd(0.5).expect("valid");
        assert!(
            model.relative_error(&scaled) > 0.5,
            "DVS error {} must be large",
            model.relative_error(&scaled)
        );
    }

    #[test]
    fn recalibration_fixes_it() {
        // The Butts-Sohi workaround the paper calls "inconvenient although
        // feasible": recompute the model at every new operating point.
        let hot = calib_env().with_temperature(383.15).expect("valid");
        let recal = ButtsSohiModel::calibrate(CellKind::Sram6t, &hot);
        assert!(recal.relative_error(&hot) < 1e-12);
    }

    #[test]
    fn per_cell_kinds_need_different_kdesign() {
        let env = calib_env();
        let inv = ButtsSohiModel::calibrate(CellKind::Inverter, &env);
        let nor = ButtsSohiModel::calibrate(CellKind::Nor2, &env);
        assert!(
            (inv.k_design - nor.k_design).abs() > 0.05,
            "topology must show up in k_design: {} vs {}",
            inv.k_design,
            nor.k_design
        );
    }
}
