//! The BSIM3 v3.2 subthreshold unit-leakage equation (paper Eq. 2).
//!
//! ```text
//! I_leak = µ0 · C_ox · (W/L) · e^{b(V_dd − V_dd0)} · v_t²
//!          · (1 − e^{−V_dd / v_t}) · e^{(−|V_th| − V_off) / (n · v_t)}
//! ```
//!
//! The equation assumes the transistor is **off** (`V_gs = 0`) with the full
//! supply across it (`V_ds = V_dd`); stacking and multi-transistor
//! interactions are folded into the `k_design` factors of [`crate::kdesign`].
//!
//! `µ0`, `C_ox`, `W/L`, `V_dd0` are static per node; the DIBL coefficient
//! `b`, swing coefficient `n`, and `V_off` come from curve fits; `V_dd`,
//! `V_th` and `v_t = kT/q` are evaluated dynamically, which is what lets the
//! model track temperature drift and DVS at runtime.

use crate::consts;
use crate::technology::{DeviceParams, DeviceType};
use crate::Environment;

/// Everything Eq. 2 needs about one transistor at one operating point.
///
/// `TransistorState` is the "explicit-input" form of the model: tests and the
/// Fig. 1 validation sweep construct it directly to vary one input at a time,
/// while simulator code goes through [`Environment::unit_leakage_n`] /
/// [`Environment::unit_leakage_p`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorState {
    /// Zero-bias mobility at the evaluation temperature, m²/(V·s).
    pub mobility: f64,
    /// Gate-oxide capacitance per unit area, F/m².
    pub cox: f64,
    /// Aspect ratio W/L (1.0 for *unit leakage*).
    pub w_over_l: f64,
    /// Supply voltage across the device, volts.
    pub vdd: f64,
    /// Node default supply voltage `V_dd0`, volts.
    pub vdd0: f64,
    /// Threshold-voltage magnitude at the evaluation temperature, volts.
    pub vth: f64,
    /// DIBL curve-fit coefficient, 1/V.
    pub dibl_b: f64,
    /// Subthreshold swing coefficient `n`.
    pub swing_n: f64,
    /// BSIM3 `V_off` parameter, volts.
    pub voff: f64,
    /// Temperature, kelvin.
    pub temperature_k: f64,
}

impl TransistorState {
    /// Builds the state of a unit (W/L = 1) device of `device` polarity at
    /// operating point `env`, pulling fit parameters from the node tables.
    pub fn at(env: &Environment, device: DeviceType) -> Self {
        let tech = env.tech();
        let d: &DeviceParams = tech.device(device);
        Self {
            mobility: d.mobility_at(env.temperature()),
            cox: tech.cox(),
            w_over_l: 1.0,
            vdd: env.vdd(),
            vdd0: tech.vdd0,
            vth: d.vth_at(env.temperature()).get(),
            dibl_b: d.dibl_b,
            swing_n: d.swing_n,
            voff: d.voff,
            temperature_k: env.temperature_k(),
        }
    }

    /// Returns a copy with a different aspect ratio.
    pub fn with_w_over_l(mut self, w_over_l: f64) -> Self {
        self.w_over_l = w_over_l;
        self
    }

    /// Returns a copy with a different threshold voltage (used by the Fig. 1d
    /// sweep and by sleep-transistor modelling).
    pub fn with_vth(mut self, vth: f64) -> Self {
        self.vth = vth;
        self
    }

    /// Returns a copy with a different supply voltage (Fig. 1b sweep, DVS).
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }
}

/// Evaluates paper Eq. 2 for the given transistor state, returning the
/// subthreshold (off-state) drain current in amperes.
///
/// The result is always non-negative and is zero when `vdd` is zero (a fully
/// power-gated device sees no drain bias).
///
/// ```
/// use hotleakage::{bsim3, Environment, TechNode, TransistorState, DeviceType};
///
/// let env = Environment::new(TechNode::N70, 0.9, 300.0)?;
/// let state = TransistorState::at(&env, DeviceType::Nmos);
/// let i = bsim3::unit_leakage(&state);
/// // Tens of nanoamps for a unit 70 nm NMOS at room temperature.
/// assert!(i > 1e-9 && i < 1e-6);
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
pub fn unit_leakage(state: &TransistorState) -> f64 {
    if state.vdd <= 0.0 {
        return 0.0;
    }
    let vt = consts::thermal_voltage(state.temperature_k);
    let dibl = (state.dibl_b * (state.vdd - state.vdd0)).exp();
    let drain_term = 1.0 - (-state.vdd / vt).exp();
    let gate_term = ((-state.vth.abs() - state.voff) / (state.swing_n * vt)).exp();
    (state.mobility * state.cox * state.w_over_l * dibl * vt * vt * drain_term * gate_term).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn n70_state() -> TransistorState {
        let env = Environment::new(TechNode::N70, 1.0, 300.0).unwrap();
        TransistorState::at(&env, DeviceType::Nmos)
    }

    #[test]
    fn magnitude_is_tens_of_nanoamps_at_70nm_room_temp() {
        let i = unit_leakage(&n70_state());
        assert!(i > 10e-9 && i < 200e-9, "got {i}");
    }

    #[test]
    fn linear_in_aspect_ratio() {
        let s = n70_state();
        let i1 = unit_leakage(&s);
        let i4 = unit_leakage(&s.with_w_over_l(4.0));
        assert!((i4 / i1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_when_fully_gated() {
        let s = n70_state().with_vdd(0.0);
        assert_eq!(unit_leakage(&s), 0.0);
    }

    #[test]
    fn monotone_decreasing_in_vth() {
        let s = n70_state();
        let mut prev = f64::INFINITY;
        for vth in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let i = unit_leakage(&s.with_vth(vth));
            assert!(i < prev);
            prev = i;
        }
    }

    #[test]
    fn monotone_increasing_in_vdd_via_dibl() {
        let s = n70_state();
        let mut prev = 0.0;
        for vdd in [0.3, 0.5, 0.7, 0.9, 1.0] {
            let i = unit_leakage(&s.with_vdd(vdd));
            assert!(i > prev, "vdd={vdd}");
            prev = i;
        }
    }

    #[test]
    fn exponential_temperature_sensitivity() {
        // Leakage at 110 C should be several times the 27 C value, dominated
        // by the (−Vth/ n·vt) exponent relaxing and Vth(T) falling.
        let env27 = Environment::new(TechNode::N70, 1.0, 300.0).unwrap();
        let env110 = Environment::new(TechNode::N70, 1.0, 383.15).unwrap();
        let i27 = unit_leakage(&TransistorState::at(&env27, DeviceType::Nmos));
        let i110 = unit_leakage(&TransistorState::at(&env110, DeviceType::Nmos));
        let ratio = i110 / i27;
        assert!(ratio > 3.0 && ratio < 30.0, "ratio={ratio}");
    }

    #[test]
    fn pmos_leaks_less_than_nmos() {
        let env = Environment::new(TechNode::N70, 1.0, 300.0).unwrap();
        let n = unit_leakage(&TransistorState::at(&env, DeviceType::Nmos));
        let p = unit_leakage(&TransistorState::at(&env, DeviceType::Pmos));
        assert!(p < n);
    }

    #[test]
    fn newer_nodes_leak_more_per_device() {
        // Scaling lowers Vth faster than the Vdd-driven DIBL term shrinks, so
        // per-device subthreshold leakage grows with each generation.
        let mut prev = 0.0;
        for node in TechNode::ALL {
            let env = Environment::nominal(node);
            let i = unit_leakage(&TransistorState::at(&env, DeviceType::Nmos));
            assert!(i > prev, "{node} should leak more than previous node");
            prev = i;
        }
    }
}
