//! Error types for the leakage model.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing model inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The supplied supply voltage was not physical (non-finite, ≤ 0, or far
    /// above the node's default supply).
    InvalidVdd(f64),
    /// The supplied temperature (kelvin) was outside the 200–500 K range the
    /// curve fits are valid over.
    InvalidTemperature(f64),
    /// A geometric parameter (W/L, transistor count, array dimension) was
    /// non-positive or non-finite.
    InvalidGeometry(String),
    /// A variation specification was invalid (negative sigma, zero samples).
    InvalidVariation(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidVdd(v) => write!(f, "supply voltage {v} V is not physical"),
            ModelError::InvalidTemperature(t) => {
                write!(
                    f,
                    "temperature {t} K is outside the validated 200-500 K range"
                )
            }
            ModelError::InvalidGeometry(what) => write!(f, "invalid geometry: {what}"),
            ModelError::InvalidVariation(what) => write!(f, "invalid variation spec: {what}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msg = ModelError::InvalidVdd(-1.0).to_string();
        assert!(msg.starts_with("supply"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
