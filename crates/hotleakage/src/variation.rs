//! Inter-die parameter variation (paper §3.3).
//!
//! Inter-die variation shifts the mean of a parameter equally across a whole
//! die, so it can be lumped into a single mean/variance per parameter. The
//! paper models four: transistor length `L`, oxide thickness `t_ox`, supply
//! voltage `V_dd`, and threshold voltage `V_th` — with 3σ values for 70 nm
//! taken from Nassif (ASP-DAC 2001): **47 %, 16 %, 10 %, 13 %** respectively.
//!
//! In the initialisation phase `N` Gaussian samples are drawn per parameter,
//! leakage is evaluated at each sampled corner, and the **mean of those
//! leakages** is used thereafter. Because leakage is convex (exponential) in
//! several parameters, this mean exceeds the leakage at the mean parameters —
//! which is exactly why variation must be modelled.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::bsim3::{self, TransistorState};
use crate::error::ModelError;
use crate::technology::DeviceType;
use crate::Environment;

/// Mean and 3σ fraction for one varied parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationSpec {
    /// Fractional 3σ deviation (e.g. 0.47 for ±47 % at 3σ).
    pub three_sigma_frac: f64,
}

impl VariationSpec {
    /// Creates a spec from a fractional 3σ value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidVariation`] for negative or non-finite
    /// values.
    pub fn new(three_sigma_frac: f64) -> Result<Self, ModelError> {
        if !three_sigma_frac.is_finite() || three_sigma_frac < 0.0 {
            return Err(ModelError::InvalidVariation(format!(
                "3-sigma fraction {three_sigma_frac} must be finite and non-negative"
            )));
        }
        Ok(Self { three_sigma_frac })
    }

    /// One-σ fraction.
    pub fn sigma_frac(&self) -> f64 {
        self.three_sigma_frac / 3.0
    }
}

/// Full inter-die variation configuration for the four varied parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Transistor channel-length variation.
    pub length: VariationSpec,
    /// Gate-oxide thickness variation.
    pub tox: VariationSpec,
    /// Supply-voltage variation.
    pub vdd: VariationSpec,
    /// Threshold-voltage variation.
    pub vth: VariationSpec,
    /// Number of Gaussian samples drawn per evaluation.
    pub samples: usize,
    /// PRNG seed (results are deterministic per seed).
    pub seed: u64,
}

impl VariationConfig {
    /// The 70 nm three-sigma values the paper quotes from Nassif:
    /// L 47 %, t_ox 16 %, V_dd 10 %, V_th 13 %; 1000 samples.
    pub fn paper_70nm() -> Self {
        VariationConfig {
            length: VariationSpec {
                three_sigma_frac: 0.47,
            },
            tox: VariationSpec {
                three_sigma_frac: 0.16,
            },
            vdd: VariationSpec {
                three_sigma_frac: 0.10,
            },
            vth: VariationSpec {
                three_sigma_frac: 0.13,
            },
            samples: 1000,
            seed: 0x5EED_CAFE,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidVariation`] if `samples` is zero.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.samples == 0 {
            return Err(ModelError::InvalidVariation(
                "sample count must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self::paper_70nm()
    }
}

/// Draws a standard-normal variate via Box–Muller (keeps the dependency
/// surface to `rand`'s core `Rng` trait only).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Computes the mean-leakage multiplier that inter-die variation induces at
/// operating point `env`, relative to the no-variation leakage.
///
/// `N` parameter corners are sampled (Gaussian in L, t_ox, V_dd, V_th), the
/// NMOS subthreshold current is evaluated at each, and the ratio of the mean
/// sampled current to the nominal current is returned. Apply the result with
/// [`Environment::with_variation_factor`].
///
/// Because leakage is convex in `V_th` and `L`, the factor is ≥ 1 for any
/// nonzero variance.
///
/// # Errors
///
/// Returns [`ModelError::InvalidVariation`] if `config` fails validation.
///
/// ```
/// use hotleakage::{variation, Environment, TechNode, VariationConfig};
///
/// let env = Environment::new(TechNode::N70, 0.9, 383.15)?;
/// let f = variation::mean_leakage_factor(&env, &VariationConfig::paper_70nm())?;
/// assert!(f > 1.0);
/// let varied = env.with_variation_factor(f);
/// assert!(varied.unit_leakage_n() > env.unit_leakage_n());
/// # Ok::<(), hotleakage::ModelError>(())
/// ```
pub fn mean_leakage_factor(env: &Environment, config: &VariationConfig) -> Result<f64, ModelError> {
    config.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let nominal = TransistorState::at(env, DeviceType::Nmos);
    let i_nominal = bsim3::unit_leakage(&nominal);
    if i_nominal <= 0.0 {
        return Ok(1.0);
    }
    let mut sum = 0.0;
    for _ in 0..config.samples {
        let dl = 1.0 + config.length.sigma_frac() * standard_normal(&mut rng);
        let dtox = 1.0 + config.tox.sigma_frac() * standard_normal(&mut rng);
        let dvdd = 1.0 + config.vdd.sigma_frac() * standard_normal(&mut rng);
        let dvth = 1.0 + config.vth.sigma_frac() * standard_normal(&mut rng);

        let mut s = nominal;
        // Shorter channel → larger W/L and (through Vth roll-off) lower Vth.
        let dl = dl.clamp(0.4, 1.6);
        s.w_over_l = nominal.w_over_l / dl;
        // Thinner oxide → larger Cox (folded into mobility·Cox product here).
        let dtox = dtox.clamp(0.5, 1.5);
        s.cox = nominal.cox / dtox;
        s.vdd = (nominal.vdd * dvdd).clamp(0.0, 2.0 * env.tech().vdd0);
        // Vth shift: both its own variation and short-channel roll-off from
        // the length sample (ΔVth ≈ −60 mV per −30 % L at 70 nm).
        let rolloff = 0.2 * env.tech().nmos.vth0 * (dl - 1.0);
        s.vth = (nominal.vth * dvth + rolloff).max(0.01);
        sum += bsim3::unit_leakage(&s);
    }
    Ok((sum / config.samples as f64 / i_nominal).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn env() -> Environment {
        Environment::new(TechNode::N70, 0.9, 383.15).unwrap()
    }

    #[test]
    fn factor_exceeds_one_for_paper_config() {
        let f = mean_leakage_factor(&env(), &VariationConfig::paper_70nm()).unwrap();
        assert!(
            f > 1.0,
            "convexity of leakage in varied params must raise the mean, f={f}"
        );
        assert!(f < 5.0, "but not absurdly, f={f}");
    }

    #[test]
    fn zero_variance_gives_factor_one() {
        let cfg = VariationConfig {
            length: VariationSpec {
                three_sigma_frac: 0.0,
            },
            tox: VariationSpec {
                three_sigma_frac: 0.0,
            },
            vdd: VariationSpec {
                three_sigma_frac: 0.0,
            },
            vth: VariationSpec {
                three_sigma_frac: 0.0,
            },
            samples: 100,
            seed: 1,
        };
        let f = mean_leakage_factor(&env(), &cfg).unwrap();
        assert!((f - 1.0).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = VariationConfig::paper_70nm();
        let f1 = mean_leakage_factor(&env(), &cfg).unwrap();
        let f2 = mean_leakage_factor(&env(), &cfg).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let mut cfg = VariationConfig::paper_70nm();
        let f1 = mean_leakage_factor(&env(), &cfg).unwrap();
        cfg.seed = 42;
        let f2 = mean_leakage_factor(&env(), &cfg).unwrap();
        assert_ne!(f1, f2);
        assert!(
            (f1 - f2).abs() / f1 < 0.5,
            "seeds should agree to within sampling noise"
        );
    }

    #[test]
    fn more_variation_more_leakage() {
        let small = VariationConfig {
            length: VariationSpec {
                three_sigma_frac: 0.10,
            },
            ..VariationConfig::paper_70nm()
        };
        let big = VariationConfig {
            length: VariationSpec {
                three_sigma_frac: 0.60,
            },
            ..VariationConfig::paper_70nm()
        };
        let fs = mean_leakage_factor(&env(), &small).unwrap();
        let fb = mean_leakage_factor(&env(), &big).unwrap();
        assert!(fb > fs);
    }

    #[test]
    fn zero_samples_is_an_error() {
        let cfg = VariationConfig {
            samples: 0,
            ..VariationConfig::paper_70nm()
        };
        assert!(mean_leakage_factor(&env(), &cfg).is_err());
    }

    #[test]
    fn negative_sigma_rejected() {
        assert!(VariationSpec::new(-0.1).is_err());
        assert!(VariationSpec::new(f64::NAN).is_err());
        assert!(VariationSpec::new(0.47).is_ok());
    }
}
