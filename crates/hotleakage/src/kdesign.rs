//! The double-`k_design` circuit-topology model (paper §3.1.2, Eqs. 5–8).
//!
//! Butts and Sohi fold all topology effects (transistor sizing, stacking,
//! N/P mix) into a single `k_design`. HotLeakage found N and P parameters
//! differ too much for that, so it derives **two** factors per cell type:
//!
//! ```text
//! k_n = (I_1n + I_2n + … ) / (N · n_n · I_n)     (Eq. 5)
//! k_p = (I_1p + I_2p + … ) / (N · n_p · I_p)     (Eq. 6)
//! ```
//!
//! where the sums run over all `N` input combinations, `I_kn` is the leakage
//! through the pull-down network when that combination turns it off, and
//! `I_n`/`I_p` are unit leakages. The derivation below *enumerates* every
//! input combination of a gate exactly as the paper's NAND2 worked example
//! (Fig. 2) does.
//!
//! The **stack effect** — series-connected off transistors leak far less than
//! one — is modelled physically: a chain of `m` off devices divides the drain
//! bias, so the limiting device is evaluated at `V_dd/m`, which both weakens
//! its DIBL term and shrinks its drain term. Because that reduction depends
//! on `V_dd` and temperature, the derived `k_n`/`k_p` vary (approximately
//! linearly) with both, matching the paper's observation.

use serde::{Deserialize, Serialize};

use crate::bsim3::{self, TransistorState};
use crate::technology::DeviceType;
use crate::Environment;

/// A series-parallel transistor network driven by gate inputs.
///
/// Leaves are devices gated by an input index; internal nodes compose
/// children in series or parallel. This is expressive enough for every
/// static CMOS gate the cache model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Network {
    /// One transistor, gated by input `input`, with aspect ratio `w_over_l`.
    /// `active_high` is true if the device conducts when the input is 1
    /// (NMOS in a pull-down network) and false if it conducts on 0 (PMOS).
    Device {
        /// Index of the gate input controlling this device.
        input: usize,
        /// Aspect ratio W/L.
        w_over_l: f64,
        /// Conducts when the controlling input is high.
        active_high: bool,
    },
    /// All children in series (current must pass through each).
    Series(Vec<Network>),
    /// Children in parallel (current may pass through any).
    Parallel(Vec<Network>),
}

impl Network {
    /// A single device shorthand.
    pub fn device(input: usize, w_over_l: f64, active_high: bool) -> Self {
        Network::Device {
            input,
            w_over_l,
            active_high,
        }
    }

    /// Whether the network conducts under the given input assignment.
    pub fn conducts(&self, inputs: &[bool]) -> bool {
        match self {
            Network::Device {
                input, active_high, ..
            } => inputs[*input] == *active_high,
            Network::Series(children) => children.iter().all(|c| c.conducts(inputs)),
            Network::Parallel(children) => children.iter().any(|c| c.conducts(inputs)),
        }
    }

    /// Number of devices in the network.
    pub fn device_count(&self) -> usize {
        match self {
            Network::Device { .. } => 1,
            Network::Series(c) | Network::Parallel(c) => c.iter().map(Network::device_count).sum(),
        }
    }

    /// `(off_device_count, limiting_w_over_l)` along the least-resistive
    /// leakage path when the network is off; `None` if it conducts.
    fn leak_path(&self, inputs: &[bool]) -> Option<(usize, f64)> {
        match self {
            Network::Device {
                input,
                w_over_l,
                active_high,
            } => {
                if inputs[*input] == *active_high {
                    None // conducting: contributes no series off-device
                } else {
                    Some((1, *w_over_l))
                }
            }
            Network::Series(children) => {
                // Current through a series chain is limited by its off
                // members; conducting members are transparent.
                let mut off = 0usize;
                let mut limiting = f64::INFINITY;
                for c in children {
                    if let Some((n, w)) = c.leak_path(inputs) {
                        off += n;
                        limiting = limiting.min(w);
                    }
                }
                if off == 0 {
                    None
                } else {
                    Some((off, limiting))
                }
            }
            Network::Parallel(children) => {
                // If any branch conducts the whole network conducts. Else the
                // leakage is the *sum* of branch leakages; we fold that into
                // an effective width at the shallowest branch depth.
                let mut paths = Vec::new();
                for c in children {
                    match c.leak_path(inputs) {
                        None => return None,
                        Some(p) => paths.push(p),
                    }
                }
                let min_depth = paths.iter().map(|p| p.0).min()?;
                let total_w: f64 = paths.iter().filter(|p| p.0 == min_depth).map(|p| p.1).sum();
                Some((min_depth, total_w))
            }
        }
    }

    /// Leakage current through this (off) network at operating point `env`
    /// for device polarity `device`, in amperes. Returns 0 if the network
    /// conducts under `inputs`.
    pub fn leakage(&self, env: &Environment, device: DeviceType, inputs: &[bool]) -> f64 {
        match self.leak_path(inputs) {
            None => 0.0,
            Some((off_count, w_over_l)) => stack_leakage(env, device, off_count, w_over_l),
        }
    }
}

/// Leakage of a series stack of `off_count` off devices with limiting aspect
/// ratio `w_over_l`.
///
/// For a two-device stack the intermediate node floats to the voltage `V_x`
/// at which the bottom device's current (`V_ds = V_x`, `V_gs = 0`) balances
/// the top device's (`V_ds = V_dd − V_x`, `V_gs = −V_x`): the negative
/// gate-source bias on the top device plus its weakened DIBL is the physical
/// stack effect, and because `V_x` settles at a few thermal voltages the
/// derived `k_design` factors inherit the (approximately linear) temperature
/// and supply-voltage dependence the paper reports. Deeper stacks apply the
/// pairwise reduction once more per extra device.
pub fn stack_leakage(
    env: &Environment,
    device: DeviceType,
    off_count: usize,
    w_over_l: f64,
) -> f64 {
    debug_assert!(off_count >= 1);
    let base = TransistorState::at(env, device).with_w_over_l(w_over_l);
    let single = bsim3::unit_leakage(&base);
    let current = match off_count {
        1 => single,
        _ => {
            let two = two_stack_leakage(env, &base);
            if single <= 0.0 {
                0.0
            } else {
                // Each additional series device applies roughly the same
                // pairwise reduction again.
                two * (two / single).powi(off_count as i32 - 2)
            }
        }
    };
    env.variation_factor() * current
}

/// Current through two series off devices, found by bisecting for the
/// intermediate-node voltage where the device currents balance.
fn two_stack_leakage(env: &Environment, base: &TransistorState) -> f64 {
    let vdd = env.vdd();
    let vt = env.thermal_voltage();
    let bottom = |vx: f64| bsim3::unit_leakage(&base.with_vdd(vx));
    let top = |vx: f64| {
        // Top device: V_ds = Vdd − V_x, V_gs = −V_x (source at the floating
        // node). The negative gate bias scales current by e^{−V_x/(n·v_t)}.
        bsim3::unit_leakage(&base.with_vdd(vdd - vx)) * (-vx / (base.swing_n * vt)).exp()
    };
    let (mut lo, mut hi) = (0.0_f64, vdd);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        // bottom() rises with vx, top() falls: find the crossing.
        if bottom(mid) < top(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    bottom(0.5 * (lo + hi))
}

/// A complete static CMOS gate: complementary pull-down (NMOS) and pull-up
/// (PMOS) networks over `num_inputs` inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateTopology {
    /// Human-readable gate name (for reports).
    pub name: &'static str,
    /// Number of gate inputs.
    pub num_inputs: usize,
    /// NMOS pull-down network.
    pub pull_down: Network,
    /// PMOS pull-up network.
    pub pull_up: Network,
}

/// Default aspect ratio of NMOS devices in logic gates.
pub const LOGIC_WL_N: f64 = 2.0;
/// Default aspect ratio of PMOS devices in logic gates (sized up for equal
/// drive given lower hole mobility).
pub const LOGIC_WL_P: f64 = 4.0;

impl GateTopology {
    /// A static CMOS inverter.
    pub fn inverter() -> Self {
        GateTopology {
            name: "inv",
            num_inputs: 1,
            pull_down: Network::device(0, LOGIC_WL_N, true),
            pull_up: Network::device(0, LOGIC_WL_P, false),
        }
    }

    /// A `k`-input NAND gate: `k` series NMOS, `k` parallel PMOS.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn nand(k: usize) -> Self {
        assert!(k >= 1, "nand gate needs at least one input");
        GateTopology {
            name: "nand",
            num_inputs: k,
            pull_down: Network::Series(
                (0..k)
                    .map(|i| Network::device(i, LOGIC_WL_N * k as f64, true))
                    .collect(),
            ),
            pull_up: Network::Parallel(
                (0..k)
                    .map(|i| Network::device(i, LOGIC_WL_P, false))
                    .collect(),
            ),
        }
    }

    /// A `k`-input NOR gate: `k` parallel NMOS, `k` series PMOS.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn nor(k: usize) -> Self {
        assert!(k >= 1, "nor gate needs at least one input");
        GateTopology {
            name: "nor",
            num_inputs: k,
            pull_down: Network::Parallel(
                (0..k)
                    .map(|i| Network::device(i, LOGIC_WL_N, true))
                    .collect(),
            ),
            pull_up: Network::Series(
                (0..k)
                    .map(|i| Network::device(i, LOGIC_WL_P * k as f64, false))
                    .collect(),
            ),
        }
    }

    /// Total NMOS devices.
    pub fn n_n(&self) -> usize {
        self.pull_down.device_count()
    }

    /// Total PMOS devices.
    pub fn n_p(&self) -> usize {
        self.pull_up.device_count()
    }
}

/// The pair of design factors for a cell type at an operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KDesign {
    /// NMOS design factor (Eq. 5).
    pub kn: f64,
    /// PMOS design factor (Eq. 6).
    pub kp: f64,
}

/// Derives `k_n` and `k_p` for a gate by enumerating all `2^num_inputs`
/// input combinations, exactly as the paper's NAND2 example does.
///
/// ```
/// use hotleakage::{kdesign, Environment, TechNode};
///
/// let env = Environment::nominal(TechNode::N70);
/// let k = kdesign::derive(&env, &kdesign::GateTopology::nand(2));
/// assert!(k.kn > 0.0 && k.kp > 0.0);
/// ```
pub fn derive(env: &Environment, gate: &GateTopology) -> KDesign {
    let n_combos = 1usize << gate.num_inputs;
    let unit_n = bsim3::unit_leakage(&TransistorState::at(env, DeviceType::Nmos));
    let unit_p = bsim3::unit_leakage(&TransistorState::at(env, DeviceType::Pmos));
    let mut sum_n = 0.0;
    let mut sum_p = 0.0;
    let mut inputs = vec![false; gate.num_inputs];
    for combo in 0..n_combos {
        for (bit, value) in inputs.iter_mut().enumerate() {
            *value = (combo >> bit) & 1 == 1;
        }
        sum_n += gate.pull_down.leakage(env, DeviceType::Nmos, &inputs);
        sum_p += gate.pull_up.leakage(env, DeviceType::Pmos, &inputs);
    }
    // Variation factor appears in both numerator (via Network::leakage) and
    // is deliberately *not* applied to the unit leakages here so it cancels:
    // k_design is a pure topology factor.
    let vf = env.variation_factor();
    KDesign {
        kn: sum_n / vf / (n_combos as f64 * gate.n_n() as f64 * unit_n),
        kp: sum_p / vf / (n_combos as f64 * gate.n_p() as f64 * unit_p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    fn env() -> Environment {
        Environment::nominal(TechNode::N70)
    }

    #[test]
    fn nand2_enumeration_matches_paper_example() {
        // Fig. 2: three combos turn the pull-down off, one turns the
        // pull-up off.
        let gate = GateTopology::nand(2);
        let mut pd_off = 0;
        let mut pu_off = 0;
        for combo in 0..4u32 {
            let inputs = [(combo & 1) == 1, (combo & 2) == 2];
            if !gate.pull_down.conducts(&inputs) {
                pd_off += 1;
            }
            if !gate.pull_up.conducts(&inputs) {
                pu_off += 1;
            }
        }
        assert_eq!(pd_off, 3);
        assert_eq!(pu_off, 1);
    }

    #[test]
    fn complementary_networks_never_both_conduct() {
        for gate in [
            GateTopology::inverter(),
            GateTopology::nand(3),
            GateTopology::nor(2),
        ] {
            for combo in 0..(1u32 << gate.num_inputs) {
                let inputs: Vec<bool> = (0..gate.num_inputs)
                    .map(|b| (combo >> b) & 1 == 1)
                    .collect();
                let pd = gate.pull_down.conducts(&inputs);
                let pu = gate.pull_up.conducts(&inputs);
                assert!(
                    pd != pu,
                    "{}: exactly one network conducts (static CMOS)",
                    gate.name
                );
            }
        }
    }

    #[test]
    fn stack_effect_reduces_leakage() {
        let e = env();
        let one = stack_leakage(&e, DeviceType::Nmos, 1, 2.0);
        let two = stack_leakage(&e, DeviceType::Nmos, 2, 2.0);
        let three = stack_leakage(&e, DeviceType::Nmos, 3, 2.0);
        assert!(
            two < 0.5 * one,
            "2-stack should cut leakage sharply: {two} vs {one}"
        );
        assert!(three < two);
    }

    #[test]
    fn nand_kn_below_simple_width_scaling() {
        // Series stacking means kn is well below the bare W/L the devices
        // have: the stack effect is visible in the derived factor.
        let e = env();
        let k = derive(&e, &GateTopology::nand(2));
        assert!(
            k.kn < LOGIC_WL_N * 2.0,
            "kn={} should reflect stacking",
            k.kn
        );
        assert!(k.kn > 0.0);
    }

    #[test]
    fn inverter_kdesign_is_half_width() {
        // One input: combo 0 leaks through the off NMOS (W/L = LOGIC_WL_N),
        // combo 1 through the off PMOS. kn = WL_N/2, kp = WL_P/2 exactly.
        let e = env();
        let k = derive(&e, &GateTopology::inverter());
        assert!((k.kn - LOGIC_WL_N / 2.0).abs() < 1e-9, "kn={}", k.kn);
        assert!((k.kp - LOGIC_WL_P / 2.0).abs() < 1e-9, "kp={}", k.kp);
    }

    #[test]
    fn kdesign_varies_with_vdd_and_temperature() {
        // The paper: k_n/k_p have a (roughly linear) relationship with
        // temperature and supply voltage. Our physical stack model produces
        // that dependence for stacked gates.
        let gate = GateTopology::nand(2);
        let base = derive(&Environment::new(TechNode::N70, 1.0, 300.0).unwrap(), &gate);
        let low_v = derive(&Environment::new(TechNode::N70, 0.7, 300.0).unwrap(), &gate);
        let hot = derive(
            &Environment::new(TechNode::N70, 1.0, 383.15).unwrap(),
            &gate,
        );
        assert!((base.kn - low_v.kn).abs() > 1e-6, "kn must move with Vdd");
        assert!((base.kn - hot.kn).abs() > 1e-6, "kn must move with T");
    }

    #[test]
    fn kdesign_independent_of_variation_factor() {
        let gate = GateTopology::nand(3);
        let e = env();
        let k1 = derive(&e, &gate);
        let k2 = derive(&e.with_variation_factor(1.5), &gate);
        assert!((k1.kn - k2.kn).abs() < 1e-12);
        assert!((k1.kp - k2.kp).abs() < 1e-12);
    }

    #[test]
    fn nor_gate_mirrors_nand() {
        let e = env();
        let nand = derive(&e, &GateTopology::nand(2));
        let nor = derive(&e, &GateTopology::nor(2));
        // A NOR's parallel NMOS network is only off in 1 of 4 combos, so its
        // kn sits well below a NAND's (whose series NMOS is off in 3 of 4).
        assert!(nor.kn < nand.kn, "nor.kn={} nand.kn={}", nor.kn, nand.kn);
        // Its series PMOS is off in 3 of 4 combos (and sized up 2x), so its
        // kp sits above the NAND's single-combo kp.
        assert!(nor.kp > nand.kp, "nor.kp={} nand.kp={}", nor.kp, nand.kp);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_input_nand_panics() {
        GateTopology::nand(0);
    }
}
