//! Parallel-engine contract: fanning timing runs across worker threads
//! must not change a single bit of any figure — scheduling only affects
//! *when* a run executes, never what it computes, and pricing stays
//! serial in request order.

use leakctl::{Technique, TechniqueKind};
use simcore::{figures, CompareRequest, Study, StudyConfig};
use specgen::Benchmark;

const INSTS: u64 = 40_000;

fn study(threads: usize) -> Study {
    Study::with_threads(
        StudyConfig {
            insts: INSTS,
            ..StudyConfig::default()
        },
        threads,
    )
}

#[test]
fn parallel_savings_figure_is_bitwise_equal_to_sequential() {
    let seq = figures::savings_figure(&study(1), "fig8", 11, 110.0).expect("sequential");
    let par = figures::savings_figure(&study(4), "fig8", 11, 110.0).expect("parallel");
    assert_eq!(
        seq, par,
        "4-thread figure must equal the 1-thread figure bit for bit"
    );
}

#[test]
fn parallel_best_interval_figures_are_bitwise_equal_to_sequential() {
    let seq = figures::best_interval_figures(&study(1), 11, 85.0).expect("sequential");
    let par = figures::best_interval_figures(&study(4), 11, 85.0).expect("parallel");
    assert_eq!(seq.0, par.0, "fig12 must match bit for bit");
    assert_eq!(seq.1, par.1, "fig13 must match bit for bit");
    assert_eq!(seq.2, par.2, "table3 must match");
}

#[test]
fn compare_many_equals_per_request_compare() {
    let par = study(8);
    let seq = study(1);
    let requests: Vec<CompareRequest> = Benchmark::ALL
        .into_iter()
        .flat_map(|benchmark| {
            [Technique::drowsy(2048), Technique::gated_vss(2048)].map(|technique| CompareRequest {
                benchmark,
                technique,
                l2_latency: 11,
                temperature_c: 110.0,
            })
        })
        .collect();
    let batch = par.compare_many(&requests).expect("batch");
    for (req, got) in requests.iter().zip(&batch) {
        let solo = seq
            .compare(
                req.benchmark,
                req.technique,
                req.l2_latency,
                req.temperature_c,
            )
            .expect("solo");
        assert_eq!(*got, solo, "{:?}/{:?}", req.benchmark, req.technique.kind);
    }
}

#[test]
fn interval_sweep_par_matches_sequential_sweep() {
    let intervals = [1024u64, 4096, 16384];
    let s = study(1);
    let seq = s
        .interval_sweep(
            Benchmark::Gzip,
            TechniqueKind::Drowsy,
            11,
            110.0,
            &intervals,
        )
        .expect("sequential sweep");
    let par = study(4)
        .interval_sweep_par(
            Benchmark::Gzip,
            TechniqueKind::Drowsy,
            11,
            110.0,
            &intervals,
            4,
        )
        .expect("parallel sweep");
    assert_eq!(seq, par);
}

#[test]
fn batch_reuses_cached_runs() {
    let s = study(4);
    let requests = [CompareRequest {
        benchmark: Benchmark::Gzip,
        technique: Technique::drowsy(4096),
        l2_latency: 11,
        temperature_c: 110.0,
    }];
    s.compare_many(&requests).expect("first batch");
    let after_first = s.cache().len();
    assert_eq!(after_first, 2, "one baseline + one technique run");
    // Re-pricing at another temperature must add zero timing runs.
    let reprice = [CompareRequest {
        temperature_c: 85.0,
        ..requests[0]
    }];
    s.compare_many(&reprice).expect("re-priced batch");
    assert_eq!(
        s.cache().len(),
        after_first,
        "re-pricing must not re-simulate"
    );
}
