//! End-to-end reproduction checks: the qualitative results of the paper's
//! evaluation (§5) must hold on scaled-down runs.
//!
//! These tests assert the *shape* — who wins, in which regime, in which
//! direction parameters move results — not absolute percentages, exactly as
//! DESIGN.md's reproduction contract states.

use leakctl::{Technique, TechniqueKind};
use simcore::study::technique_of;
use simcore::{Study, StudyConfig, SWEEP_INTERVALS};
use specgen::Benchmark;

const INSTS: u64 = 250_000;

fn study() -> Study {
    Study::new(StudyConfig::with_insts(INSTS))
}

/// Average a metric over all 11 benchmarks for one technique.
fn averages(study: &Study, kind: TechniqueKind, interval: u64, l2: u32, temp: f64) -> (f64, f64) {
    let mut savings = 0.0;
    let mut loss = 0.0;
    for b in Benchmark::ALL {
        let r = study
            .compare(b, technique_of(kind, interval), l2, temp)
            .expect("comparison runs");
        savings += r.net_savings_pct / 11.0;
        loss += r.perf_loss_pct / 11.0;
    }
    (savings, loss)
}

#[test]
fn fast_l2_favors_gated_vss_on_both_metrics() {
    // Figures 3/4: at a 5-cycle L2, gated-Vss is superior in energy AND
    // performance.
    let s = study();
    let (d_sav, d_loss) = averages(&s, TechniqueKind::Drowsy, 4096, 5, 110.0);
    let (g_sav, g_loss) = averages(&s, TechniqueKind::GatedVss, 4096, 5, 110.0);
    assert!(
        g_sav > d_sav,
        "gated savings {g_sav} must beat drowsy {d_sav} at L2=5"
    );
    assert!(
        g_loss < d_loss,
        "gated loss {g_loss} must beat drowsy {d_loss} at L2=5"
    );
}

#[test]
fn slow_l2_favors_drowsy() {
    // Figures 10/11: at a 17-cycle L2, drowsy is clearly superior.
    let s = study();
    let (d_sav, d_loss) = averages(&s, TechniqueKind::Drowsy, 4096, 17, 110.0);
    let (g_sav, g_loss) = averages(&s, TechniqueKind::GatedVss, 4096, 17, 110.0);
    assert!(
        d_sav > g_sav,
        "drowsy savings {d_sav} must beat gated {g_sav} at L2=17"
    );
    assert!(
        d_loss < g_loss,
        "drowsy loss {d_loss} must beat gated {g_loss} at L2=17"
    );
}

#[test]
fn eleven_cycle_l2_is_a_near_tie() {
    // Figures 8/9: at 11 cycles the picture is "less clear" — the energy
    // gap must be small relative to the L2=5 and L2=17 gaps.
    let s = study();
    let gap_at = |s: &Study, l2: u32| {
        let (d, _) = averages(s, TechniqueKind::Drowsy, 4096, l2, 110.0);
        let (g, _) = averages(s, TechniqueKind::GatedVss, 4096, l2, 110.0);
        g - d
    };
    let gap5 = gap_at(&s, 5);
    let gap11 = gap_at(&s, 11);
    let gap17 = gap_at(&s, 17);
    assert!(
        gap5 > gap11,
        "gated's edge must shrink from L2=5 ({gap5}) to 11 ({gap11})"
    );
    assert!(gap11 > gap17, "and keep shrinking to L2=17 ({gap17})");
    assert!(
        gap5 > 0.0 && gap17 < 0.0,
        "with the sign flipping inside the sweep"
    );
}

#[test]
fn gated_perf_loss_grows_with_l2_latency_drowsy_does_not() {
    // §5.1: gated's cost per induced miss scales with L2 latency; drowsy's
    // slow hits are latency-independent.
    let s = study();
    let (_, g5) = averages(&s, TechniqueKind::GatedVss, 4096, 5, 110.0);
    let (_, g17) = averages(&s, TechniqueKind::GatedVss, 4096, 17, 110.0);
    let (_, d5) = averages(&s, TechniqueKind::Drowsy, 4096, 5, 110.0);
    let (_, d17) = averages(&s, TechniqueKind::Drowsy, 4096, 17, 110.0);
    assert!(
        g17 > 1.5 * g5,
        "gated loss must grow steeply with L2 latency: {g5} -> {g17}"
    );
    assert!(
        (d17 - d5).abs() < 0.5,
        "drowsy loss must stay flat: {d5} -> {d17}"
    );
}

#[test]
fn higher_temperature_raises_savings_for_both() {
    // Figures 7 vs 8: leakage grows exponentially with temperature, so the
    // same runs priced at 110 C save more than at 85 C.
    let s = study();
    let (d85, _) = averages(&s, TechniqueKind::Drowsy, 4096, 11, 85.0);
    let (d110, _) = averages(&s, TechniqueKind::Drowsy, 4096, 11, 110.0);
    let (g85, _) = averages(&s, TechniqueKind::GatedVss, 4096, 11, 85.0);
    let (g110, _) = averages(&s, TechniqueKind::GatedVss, 4096, 11, 110.0);
    assert!(d110 > d85, "drowsy: {d85} -> {d110}");
    assert!(g110 > g85, "gated: {g85} -> {g110}");
    // And the relative ranking is barely affected (paper §5.2).
    assert!(((g110 - d110) - (g85 - d85)).abs() < 6.0);
}

#[test]
fn adaptivity_benefits_gated_more_than_drowsy() {
    // Figures 12/13 + Table 3: per-benchmark best intervals help gated-Vss
    // (whose best intervals vary widely) more than drowsy.
    let s = study();
    let (d_def, _) = averages(&s, TechniqueKind::Drowsy, 4096, 11, 85.0);
    let (g_def, _) = averages(&s, TechniqueKind::GatedVss, 4096, 11, 85.0);
    let mut d_best = 0.0;
    let mut g_best = 0.0;
    let mut d_intervals = Vec::new();
    let mut g_intervals = Vec::new();
    for b in Benchmark::ALL {
        let d = s
            .best_interval(b, TechniqueKind::Drowsy, 11, 85.0, &SWEEP_INTERVALS)
            .expect("sweep runs");
        let g = s
            .best_interval(b, TechniqueKind::GatedVss, 11, 85.0, &SWEEP_INTERVALS)
            .expect("sweep runs");
        d_best += d.net_savings_pct / 11.0;
        g_best += g.net_savings_pct / 11.0;
        d_intervals.push(d.interval);
        g_intervals.push(g.interval);
    }
    let d_gain = d_best - d_def;
    let g_gain = g_best - g_def;
    assert!(g_gain > 0.0, "oracle must help gated, gain {g_gain}");
    assert!(
        g_gain > d_gain - 1.0,
        "gated's gain {g_gain} must rival or beat drowsy's {d_gain}"
    );
    // Table 3's signature: gated's best intervals sit at or above drowsy's.
    let d_max = *d_intervals.iter().max().expect("non-empty");
    let g_max = *g_intervals.iter().max().expect("non-empty");
    assert!(
        g_max >= d_max,
        "gated's interval menu must extend longer: {g_max} vs {d_max}"
    );
}

#[test]
fn drowsy_never_induces_misses_gated_never_slow_hits() {
    let s = study();
    for b in [Benchmark::Gzip, Benchmark::Twolf] {
        let d = s
            .compare(b, Technique::drowsy(2048), 11, 110.0)
            .expect("runs");
        let g = s
            .compare(b, Technique::gated_vss(2048), 11, 110.0)
            .expect("runs");
        assert_eq!(
            d.induced_misses, 0,
            "{b}: state preservation means no induced misses"
        );
        assert!(d.slow_hits > 0, "{b}: drowsy must see slow hits");
        assert_eq!(g.slow_hits, 0, "{b}: lost state cannot produce slow hits");
        assert!(g.induced_misses > 0, "{b}: gated must see induced misses");
    }
}

#[test]
fn rbb_is_dominated_at_70nm() {
    // The paper skips RBB because GIDL limits it at 70 nm; our model should
    // show it saving less than drowsy at the same interval.
    let s = study();
    let mut rbb = 0.0;
    let mut drowsy = 0.0;
    for b in [Benchmark::Gzip, Benchmark::Perl, Benchmark::Gcc] {
        rbb += s
            .compare(b, Technique::rbb(4096), 11, 110.0)
            .expect("runs")
            .net_savings_pct;
        drowsy += s
            .compare(b, Technique::drowsy(4096), 11, 110.0)
            .expect("runs")
            .net_savings_pct;
    }
    assert!(
        rbb < drowsy,
        "RBB ({rbb}) must save less than drowsy ({drowsy}) at 70nm"
    );
}

#[test]
fn simple_policy_saves_more_but_costs_more_than_noaccess() {
    // §2.3: the `simple` policy "loses out in performance compared to the
    // noaccess policy, but saves more leakage power".
    let s = study();
    let mut noaccess = (0.0, 0.0);
    let mut simple = (0.0, 0.0);
    for b in [Benchmark::Perl, Benchmark::Vortex, Benchmark::Gzip] {
        let na = s
            .compare(b, Technique::drowsy(4096), 11, 110.0)
            .expect("runs");
        let si = s
            .compare(
                b,
                Technique {
                    policy: cachesim::DecayPolicy::Simple,
                    ..Technique::drowsy(4096)
                },
                11,
                110.0,
            )
            .expect("runs");
        noaccess.0 += na.turnoff_pct;
        noaccess.1 += na.perf_loss_pct;
        simple.0 += si.turnoff_pct;
        simple.1 += si.perf_loss_pct;
    }
    assert!(
        simple.0 > noaccess.0,
        "simple must turn off more: {simple:?} vs {noaccess:?}"
    );
    assert!(
        simple.1 > noaccess.1,
        "and pay more performance: {simple:?} vs {noaccess:?}"
    );
}
