//! Property-based tests (proptest) on the core data structures and model
//! invariants, across random inputs rather than chosen examples.

use cachesim::{AccessKind, Cache, CacheConfig, DecayConfig, DecayPolicy, StandbyBehavior};
use hotleakage::bsim3::{self, TransistorState};
use hotleakage::kdesign::{self, GateTopology};
use hotleakage::technology::DeviceType;
use hotleakage::{Environment, TechNode};
use proptest::prelude::*;
use simcore::pricing::{net_savings, Priced};

fn arb_node() -> impl Strategy<Value = TechNode> {
    prop_oneof![
        Just(TechNode::N180),
        Just(TechNode::N130),
        Just(TechNode::N100),
        Just(TechNode::N70),
    ]
}

fn arb_env() -> impl Strategy<Value = Environment> {
    (arb_node(), 0.2f64..1.4, 250.0f64..450.0)
        .prop_filter_map("valid operating point", |(node, vdd, t)| {
            Environment::new(node, vdd, t).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- hotleakage ----

    #[test]
    fn unit_leakage_is_finite_and_nonnegative(env in arb_env(), wl in 0.1f64..50.0) {
        let s = TransistorState::at(&env, DeviceType::Nmos).with_w_over_l(wl);
        let i = bsim3::unit_leakage(&s);
        prop_assert!(i.is_finite());
        prop_assert!(i >= 0.0);
    }

    #[test]
    fn leakage_monotone_in_temperature(node in arb_node(), t1 in 260.0f64..440.0, dt in 1.0f64..40.0) {
        let vdd = node.params().vdd0 * 0.9;
        let cold = Environment::new(node, vdd, t1).expect("valid");
        let hot = Environment::new(node, vdd, (t1 + dt).min(450.0)).expect("valid");
        prop_assert!(hot.unit_leakage_n() > cold.unit_leakage_n());
    }

    #[test]
    fn leakage_monotone_in_vdd(node in arb_node(), v in 0.25f64..1.0, dv in 0.01f64..0.3) {
        let t = 360.0;
        let lo = Environment::new(node, v, t).expect("valid");
        let hi = Environment::new(node, (v + dv).min(1.35), t).expect("valid");
        prop_assert!(hi.unit_leakage_n() > lo.unit_leakage_n());
    }

    #[test]
    fn stack_effect_never_amplifies(env in arb_env(), depth in 1usize..5, wl in 0.5f64..10.0) {
        let single = kdesign::stack_leakage(&env, DeviceType::Nmos, 1, wl);
        let stacked = kdesign::stack_leakage(&env, DeviceType::Nmos, depth, wl);
        prop_assert!(stacked <= single * 1.0000001, "depth {depth}: {stacked} vs {single}");
    }

    #[test]
    fn static_cmos_gates_have_exactly_one_conducting_network(
        env in arb_env(),
        k in 1usize..4,
        combo in 0u32..64,
    ) {
        for gate in [GateTopology::nand(k), GateTopology::nor(k)] {
            let inputs: Vec<bool> = (0..gate.num_inputs).map(|b| (combo >> b) & 1 == 1).collect();
            let pd = gate.pull_down.conducts(&inputs);
            let pu = gate.pull_up.conducts(&inputs);
            prop_assert!(pd != pu);
            // And the off network always leaks a positive, finite current.
            let leak = if pd {
                gate.pull_up.leakage(&env, DeviceType::Pmos, &inputs)
            } else {
                gate.pull_down.leakage(&env, DeviceType::Nmos, &inputs)
            };
            prop_assert!(leak.is_finite() && leak > 0.0);
        }
    }

    // ---- cachesim ----

    #[test]
    fn cache_mode_cycles_always_conserved(
        addrs in proptest::collection::vec((0u64..1u64 << 20, 1u64..400), 1..120),
        interval in 64u64..4096,
        losing in proptest::bool::ANY,
    ) {
        let decay = DecayConfig {
            interval_cycles: interval,
            policy: DecayPolicy::NoAccess,
            tags_decay: true,
            behavior: if losing { StandbyBehavior::Losing } else { StandbyBehavior::Preserving },
            sleep_settle_cycles: if losing { 30 } else { 3 },
            wake_settle_cycles: 3,
        };
        let mut cache = Cache::new(CacheConfig::l1_64k_2way(), Some(decay)).expect("valid");
        let mut now = 0u64;
        for (addr, gap) in addrs {
            now += gap;
            cache.advance_to(now);
            cache.access(addr & !63, AccessKind::Read, now);
        }
        cache.finalize(now);
        let lines = cache.config().num_lines() as u64;
        prop_assert_eq!(cache.stats().mode_cycles.total(), units::Cycles::new(lines * now));
    }

    #[test]
    fn hits_plus_misses_account_every_access(
        addrs in proptest::collection::vec(0u64..1u64 << 16, 1..300),
        losing in proptest::bool::ANY,
    ) {
        let decay = DecayConfig {
            interval_cycles: 256,
            policy: DecayPolicy::NoAccess,
            tags_decay: true,
            behavior: if losing { StandbyBehavior::Losing } else { StandbyBehavior::Preserving },
            sleep_settle_cycles: 3,
            wake_settle_cycles: 3,
        };
        let mut cache = Cache::new(CacheConfig::l1_64k_2way(), Some(decay)).expect("valid");
        for (i, addr) in addrs.iter().enumerate() {
            cache.access(*addr, AccessKind::Read, (i as u64) * 50);
        }
        let s = cache.stats();
        prop_assert_eq!(
            s.hits + s.slow_hits + s.induced_misses + s.true_misses,
            s.accesses()
        );
        if !losing {
            prop_assert_eq!(s.induced_misses, 0, "preserving standby never induces misses");
        } else {
            prop_assert_eq!(s.slow_hits, 0, "losing standby never slow-hits");
        }
    }

    #[test]
    fn cache_contents_match_reference_model_without_decay(
        addrs in proptest::collection::vec(0u64..1u64 << 14, 1..200),
    ) {
        // Reference: a simple software model of 2-way LRU.
        let cfg = CacheConfig::l1_64k_2way();
        let mut cache = Cache::new(cfg, None).expect("valid");
        let mut model: std::collections::HashMap<usize, Vec<u64>> = Default::default();
        for (i, addr) in addrs.iter().enumerate() {
            let (tag, set) = cfg.split(*addr);
            let ways = model.entry(set).or_default();
            let model_hit = ways.contains(&tag);
            let r = cache.access(*addr, AccessKind::Read, i as u64);
            prop_assert_eq!(r.hit, model_hit, "access {} to {:#x}", i, addr);
            if let Some(pos) = ways.iter().position(|&t| t == tag) {
                ways.remove(pos);
            } else if ways.len() == cfg.assoc {
                ways.remove(0);
            }
            ways.push(tag); // most-recent at the back
        }
    }

    // ---- pricing ----

    #[test]
    fn net_savings_bounded_by_gross(
        base_leak in 1.0e-9f64..1.0e-3,
        tech_leak_frac in 0.0f64..1.0,
        dyn_base in 0.0f64..1.0e-3,
        dyn_extra in 0.0f64..1.0e-4,
    ) {
        let base = Priced {
            leakage_j: units::Joules::new(base_leak),
            dynamic_j: units::Joules::new(dyn_base),
            seconds: units::Seconds::new(1e-3),
        };
        let tech = Priced {
            leakage_j: units::Joules::new(base_leak * tech_leak_frac),
            dynamic_j: units::Joules::new(dyn_base + dyn_extra),
            seconds: units::Seconds::new(1e-3),
        };
        let net = net_savings(&base, &tech);
        let gross = 1.0 - tech_leak_frac;
        prop_assert!(net <= gross + 1e-12, "net {net} cannot exceed gross {gross}");
        // Net degrades exactly by the dynamic cost ratio.
        let expected = gross - dyn_extra / base_leak;
        prop_assert!((net - expected).abs() < 1e-9);
    }
}
