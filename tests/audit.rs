//! End-to-end audit enforcement: with the `audit` feature (default on),
//! every simulation path — direct execution, the memoizing `RunCache`,
//! the parallel batch engine, and the closed-loop adaptive runs — runs
//! under the conservation laws of `cachesim::audit`, and the cached and
//! fresh paths stay bitwise identical.
#![cfg(feature = "audit")]

use leakctl::{Technique, TechniqueKind};
use simcore::adaptive::{run_adaptive, Controller};
use simcore::study::{self, CompareRequest};
use simcore::{RunResult, Study, StudyConfig};
use specgen::Benchmark;

fn quick_cfg() -> StudyConfig {
    StudyConfig {
        insts: 60_000,
        ..StudyConfig::default()
    }
}

#[test]
fn every_technique_run_passes_the_post_run_audit() {
    // raw_run only returns Ok if the in-execute hierarchy audit and the
    // post-cache RawRun audit both came back clean.
    let study = Study::new(quick_cfg());
    for technique in [
        Technique::none(),
        Technique::gated_vss(2048),
        Technique::drowsy(1024),
        Technique::rbb(4096),
    ] {
        let raw = study
            .raw_run(Benchmark::Gzip, &technique, 11)
            .unwrap_or_else(|e| panic!("{:?} failed the audit: {e}", technique.kind));
        assert!(raw.l1d.wakes <= raw.l1d.sleeps);
    }
}

#[test]
fn cached_and_fresh_runs_are_bitwise_identical() {
    let study = Study::new(quick_cfg());
    let tech = Technique::gated_vss(1024);
    let first = study.raw_run(Benchmark::Vpr, &tech, 11).expect("fresh run");
    let recalled = study
        .raw_run(Benchmark::Vpr, &tech, 11)
        .expect("cached run (re-audited on recall)");
    let direct = study::execute(Benchmark::Vpr, &tech, &quick_cfg(), 11).expect("direct run");
    assert_eq!(first, recalled, "cache must hand back the identical run");
    assert_eq!(first, direct, "memoized and direct execution must agree");
}

#[test]
fn parallel_batch_path_matches_sequential_comparison() {
    let par = Study::with_threads(quick_cfg(), 4);
    let requests: Vec<CompareRequest> = [512u64, 2048]
        .iter()
        .flat_map(|&i| [Technique::gated_vss(i), Technique::drowsy(i)])
        .map(|technique| CompareRequest {
            benchmark: Benchmark::Gzip,
            technique,
            l2_latency: 11,
            temperature_c: 110.0,
        })
        .collect();
    let batch = par.compare_many(&requests).expect("batch path");
    let seq = Study::with_threads(quick_cfg(), 1);
    let one_by_one: Vec<RunResult> = requests
        .iter()
        .map(|r| {
            seq.compare(r.benchmark, r.technique, r.l2_latency, r.temperature_c)
                .expect("sequential path")
        })
        .collect();
    assert_eq!(batch, one_by_one);
}

#[test]
fn adaptive_interval_switching_passes_the_audit() {
    // Interval switches mid-run exercise the counter-reset path; the
    // post-run audit inside run_adaptive must still come back clean.
    let run = run_adaptive(
        Benchmark::Gzip,
        TechniqueKind::GatedVss,
        Controller::AdaptiveModeControl,
        &quick_cfg(),
        11,
        10_000,
    )
    .expect("adaptive run passes the audit");
    assert!(run.interval_trace.len() > 1);
    assert!(run.raw.l1d.wakes <= run.raw.l1d.sleeps);
}
