//! Deterministic interleaving checks over the concurrency core.
//!
//! These tests run small **closed models** of the three concurrent
//! subsystems — the coalescing `RunCache`, the `studyd` bounded
//! `JobQueue`, and the `runstore` write-behind flusher — under
//! `interleave::Checker`, which explores *every* distinct thread schedule
//! (up to the preemption bound, with sleep-set pruning of commuting
//! interleavings) instead of the one schedule a normal test happens to
//! observe. The dev-dependency graph builds `simcore`/`studyd`/`runstore`
//! with the `model-check` feature, swapping their `std::sync` primitives
//! for interleave's instrumented ones; outside a checker run those
//! delegate straight to std, so every other test in this suite behaves
//! identically.
//!
//! With `--features coalesce-race-bug` (CI negative smoke) the Pending
//! slot is never published and `coalescing_never_double_computes` must
//! FAIL, printing the minimal replayable schedule trace that exhibits the
//! double-compute.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cachesim::CacheStats;
use interleave::{thread, Checker};
use leakctl::Technique;
use simcore::{RawRun, RunCache, RunKey, StudyError};
use specgen::Benchmark;
use studyd::JobQueue;
use uarch::CoreStats;
use units::Cycles;

fn dummy_run(cycles: u64) -> RawRun {
    RawRun {
        cycles: Cycles::new(cycles),
        core: CoreStats::default(),
        l1d: CacheStats::default(),
    }
}

fn key(l2_latency: u32) -> RunKey {
    RunKey::of(Benchmark::Gcc, &Technique::none(), l2_latency)
}

/// Prints the exploration summary (visible with `--nocapture`; quoted in
/// EXPERIMENTS.md) and enforces exhaustiveness plus a coverage floor.
fn expect_coverage(name: &str, report: &interleave::Report, floor: usize) {
    eprintln!(
        "interleave model {name}: {} schedules ({} pruned, max depth {})",
        report.schedules, report.pruned, report.max_depth_seen
    );
    assert!(report.complete, "{name} model must be fully explored");
    assert!(
        report.schedules >= floor,
        "{name}: expected substantive schedule coverage, got {report:?}"
    );
}

// ---------------------------------------------------------------------------
// RunCache coalescing
// ---------------------------------------------------------------------------

/// Three concurrent requests for the same key: exactly one executes the
/// run, the others are served the same result (a hit if they probed
/// after the fill, coalesced if they waited on the in-flight marker).
/// This is the model the seeded `coalesce-race-bug` must break in CI.
#[test]
fn coalescing_never_double_computes() {
    let report = Checker::new("runcache-coalesce").check(|| {
        let cache = Arc::new(RunCache::with_shards(1));
        let executions = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let executions = Arc::clone(&executions);
                thread::spawn(move || {
                    cache
                        .get_or_run(key(10), || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            Ok(dummy_run(42))
                        })
                        .map(|r| r.cycles)
                })
            })
            .collect();
        let mut results = Vec::new();
        for worker in workers {
            results.push(worker.join().expect("model worker"));
        }
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "a coalesced fill must execute exactly once"
        );
        for r in results {
            assert_eq!(
                r.expect("fill succeeds"),
                Cycles::new(42),
                "every contender sees the one fill"
            );
        }
        let counters = cache.counters();
        assert_eq!(counters.misses, 1, "one contender is the runner");
        assert_eq!(
            counters.hits + counters.coalesced,
            2,
            "the other contenders are served the fill"
        );
        assert_eq!(cache.len(), 1);
    });
    expect_coverage("runcache-coalesce", &report, 1000);
}

/// A failed run is not memoized and does not strand waiters: whichever
/// contender executes first gets the error, the other becomes the new
/// runner and fills the cache.
#[test]
fn coalescing_failed_fill_releases_waiters() {
    let report = Checker::new("runcache-error").check(|| {
        let cache = Arc::new(RunCache::with_shards(1));
        let executions = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let executions = Arc::clone(&executions);
                thread::spawn(move || {
                    cache.get_or_run(key(10), || {
                        // First execution fails; the retry (by whichever
                        // thread re-probes) succeeds.
                        if executions.fetch_add(1, Ordering::SeqCst) == 0 {
                            Err(StudyError::EmptyIntervalList)
                        } else {
                            Ok(dummy_run(7))
                        }
                    })
                })
            })
            .collect();
        let outcomes: Vec<_> = workers
            .into_iter()
            .map(|w| w.join().expect("model worker"))
            .collect();
        let errors = outcomes.iter().filter(|o| o.is_err()).count();
        let oks = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(
            (errors, oks),
            (1, 1),
            "exactly one contender sees the error, the other the retry fill"
        );
        assert_eq!(executions.load(Ordering::SeqCst), 2);
        assert_eq!(cache.len(), 1, "the error must not be memoized");
        assert_eq!(cache.get(&key(10)).map(|r| r.cycles), Some(Cycles::new(7)));
    });
    expect_coverage("runcache-error", &report, 40);
}

/// Distinct keys in the same shard never contend for a fill: both
/// compute, neither waits, and both land.
#[test]
fn coalescing_distinct_keys_are_independent_fills() {
    let report = Checker::new("runcache-distinct").check(|| {
        let cache = Arc::new(RunCache::with_shards(1));
        let workers: Vec<_> = [10u32, 20u32]
            .into_iter()
            .map(|latency| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    cache.get_or_run(key(latency), || Ok(dummy_run(u64::from(latency))))
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model worker").expect("fill succeeds");
        }
        let counters = cache.counters();
        assert_eq!(counters.misses, 2, "each key fills itself");
        assert_eq!(counters.coalesced, 0, "distinct keys never coalesce");
        assert_eq!(cache.len(), 2);
    });
    expect_coverage("runcache-distinct", &report, 40);
}

// ---------------------------------------------------------------------------
// studyd JobQueue
// ---------------------------------------------------------------------------

/// Two producers, one blocking consumer: every pushed job is popped
/// exactly once and the consumer's condvar waits never lose a wakeup
/// (a lost notify would surface as a deadlock counterexample).
#[test]
fn job_queue_loses_no_jobs_and_no_wakeups() {
    let report = Checker::new("jobqueue-produce-consume").check(|| {
        let queue = Arc::new(JobQueue::new(2));
        let producers: Vec<_> = [1u32, 2u32]
            .into_iter()
            .map(|job| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || queue.try_push(job).expect("capacity covers both pushes"))
            })
            .collect();
        let mut seen = Vec::new();
        for _ in 0..2 {
            seen.push(queue.pop().expect("queue is open and will be fed"));
        }
        for producer in producers {
            producer.join().expect("producer");
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![1, 2],
            "each accepted job is delivered exactly once"
        );
        assert_eq!(queue.depth(), 0);
    });
    expect_coverage("jobqueue-produce-consume", &report, 50);
}

/// Close racing a push: the push is either accepted (and then delivered
/// during the drain) or refused as Closed — never silently dropped. After
/// the drain, pop keeps returning None: no replies after drain, and
/// drain-on-shutdown terminates in every schedule (a hang would be a
/// deadlock/livelock counterexample).
#[test]
fn job_queue_shutdown_drains_accepted_jobs_exactly() {
    let report = Checker::new("jobqueue-shutdown").check(|| {
        let queue = Arc::new(JobQueue::new(1));
        let accepted = Arc::new(AtomicUsize::new(0));
        let producer = {
            let queue = Arc::clone(&queue);
            let accepted = Arc::clone(&accepted);
            thread::spawn(move || {
                if queue.try_push(7u32).is_ok() {
                    accepted.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        queue.close();
        let mut drained = 0usize;
        while let Some(job) = queue.pop() {
            assert_eq!(job, 7);
            drained += 1;
        }
        producer.join().expect("producer");
        assert_eq!(
            drained,
            accepted.load(Ordering::SeqCst),
            "accepted jobs are delivered, refused jobs are not"
        );
        assert!(queue.pop().is_none(), "no replies after the drain");
        assert!(queue.is_closed());
    });
    expect_coverage("jobqueue-shutdown", &report, 5);
}

// ---------------------------------------------------------------------------
// runstore write-behind flusher
// ---------------------------------------------------------------------------

mod store_models {
    use super::*;
    use runstore::{RecordId, RunStore};
    use std::path::PathBuf;

    /// Fresh directory per schedule iteration (the store persists!). The
    /// counter is a plain std atomic: it changes the directory *name*,
    /// never the op sequence, so schedules stay deterministic.
    struct TempDirs {
        base: PathBuf,
        next: AtomicUsize,
    }

    impl TempDirs {
        fn new(tag: &str) -> Self {
            TempDirs {
                base: std::env::temp_dir().join(format!(
                    "interleave-{}-{}",
                    tag,
                    std::process::id()
                )),
                next: AtomicUsize::new(0),
            }
        }

        fn fresh(&self) -> PathBuf {
            self.base
                .join(format!("iter-{}", self.next.fetch_add(1, Ordering::SeqCst)))
        }
    }

    impl Drop for TempDirs {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.base);
        }
    }

    /// Append on one thread, flush + recall on another, with a racing
    /// reader: after `flush` returns, the record is durable and read-back
    /// verification sees exactly the written payload; a concurrent recall
    /// before the fill lands sees a clean miss, never a torn entry.
    #[test]
    fn flusher_flush_is_durable_and_never_torn() {
        let dirs = Arc::new(TempDirs::new("flush"));
        let dirs2 = Arc::clone(&dirs);
        let report = Checker::new("runstore-flush").check(move || {
            let dir = dirs2.fresh();
            let store = Arc::new(RunStore::open(&dir).expect("open store"));
            let id = RecordId::of(b"model-key", 1);
            let writer = {
                let store = Arc::clone(&store);
                thread::spawn(move || store.append(id, b"model-key".to_vec(), vec![0xAB; 24]))
            };
            let reader = {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    // Racing the fill: a miss is fine, a wrong or torn
                    // payload is not (read-back verification must hold
                    // under every index-publish interleaving).
                    if let Some(payload) = store.recall(id, b"model-key") {
                        assert_eq!(payload, vec![0xAB; 24], "no torn publish");
                    }
                })
            };
            writer.join().expect("writer");
            store.flush();
            assert_eq!(
                store.recall(id, b"model-key"),
                Some(vec![0xAB; 24]),
                "flush means durable and verifiable"
            );
            reader.join().expect("reader");
        });
        expect_coverage("runstore-flush", &report, 1000);
    }

    /// Drop-flush durability: dropping the store (no explicit flush)
    /// closes and joins the flusher, which must drain the pending queue
    /// first — a reopened store recalls the record in every schedule.
    #[test]
    fn flusher_drop_drains_pending_writes() {
        let dirs = Arc::new(TempDirs::new("drop"));
        let dirs2 = Arc::clone(&dirs);
        let report = Checker::new("runstore-drop-flush").check(move || {
            let dir = dirs2.fresh();
            let id = RecordId::of(b"drop-key", 2);
            {
                let store = RunStore::open(&dir).expect("open store");
                store.append(id, b"drop-key".to_vec(), vec![0xCD; 16]);
                // Drop without flush: closing must still drain.
            }
            let reopened = RunStore::open(&dir).expect("reopen store");
            assert_eq!(
                reopened.recall(id, b"drop-key"),
                Some(vec![0xCD; 16]),
                "drop-flush durability"
            );
        });
        expect_coverage("runstore-drop-flush", &report, 30);
    }
}
