//! Cross-crate integration tests: determinism, time-advance equivalence,
//! pricing consistency, and the leakage model's cross-module coherence.

use cachesim::{AccessKind, Cache, CacheConfig, DecayConfig, DecayPolicy, StandbyBehavior};
use hotleakage::{Environment, TechNode};
use leakctl::Technique;
use simcore::pricing::{self, CacheArrays};
use simcore::study::execute;
use simcore::{Study, StudyConfig};
use specgen::{Benchmark, SpecTrace};
use uarch::core::table2_core;
use uarch::TraceSource;

fn gated(interval: u64) -> DecayConfig {
    DecayConfig {
        interval_cycles: interval,
        policy: DecayPolicy::NoAccess,
        tags_decay: true,
        behavior: StandbyBehavior::Losing,
        sleep_settle_cycles: 30,
        wake_settle_cycles: 3,
    }
}

#[test]
fn advance_to_equals_per_cycle_ticking() {
    // The batch time-advance used by the one-pass core must produce exactly
    // the same decay behaviour as ticking every cycle.
    let mut ticked = Cache::new(CacheConfig::l1_64k_2way(), Some(gated(512))).expect("valid");
    let mut jumped = Cache::new(CacheConfig::l1_64k_2way(), Some(gated(512))).expect("valid");
    let accesses: Vec<(u64, u64)> = (0..200).map(|i| (i * 64 % 16384, i * 37 + 11)).collect();
    let mut now = 0;
    for &(addr, at) in &accesses {
        for t in now..at {
            ticked.tick(t + 1);
        }
        now = at;
        ticked.access(addr, AccessKind::Read, at);
        jumped.advance_to(at);
        jumped.access(addr, AccessKind::Read, at);
    }
    ticked.finalize(now);
    jumped.finalize(now);
    assert_eq!(ticked.stats().sleeps, jumped.stats().sleeps);
    assert_eq!(ticked.stats().induced_misses, jumped.stats().induced_misses);
    assert_eq!(ticked.stats().mode_cycles, jumped.stats().mode_cycles);
}

#[test]
fn full_stack_is_deterministic() {
    let cfg = StudyConfig {
        insts: 40_000,
        ..StudyConfig::default()
    };
    let a = execute(Benchmark::Twolf, &Technique::gated_vss(2048), &cfg, 11).expect("runs");
    let b = execute(Benchmark::Twolf, &Technique::gated_vss(2048), &cfg, 11).expect("runs");
    assert_eq!(a, b, "same seed, same everything");
    let c = execute(
        Benchmark::Twolf,
        &Technique::gated_vss(2048),
        &StudyConfig { seed: 999, ..cfg },
        11,
    )
    .expect("runs");
    assert_ne!(a.cycles, c.cycles, "different seed, different timing");
}

#[test]
fn mode_cycles_conserve_under_real_workloads() {
    // Every line-cycle of every run lands in exactly one accounting bucket.
    let cfg = StudyConfig {
        insts: 50_000,
        ..StudyConfig::default()
    };
    for technique in [Technique::drowsy(1024), Technique::gated_vss(1024)] {
        let raw = execute(Benchmark::Gcc, &technique, &cfg, 11).expect("runs");
        let lines = CacheConfig::l1_64k_2way().num_lines() as u64;
        assert_eq!(
            raw.l1d.mode_cycles.total(),
            units::Cycles::new(lines * raw.cycles.get()),
            "{technique:?}: line-cycles must be conserved"
        );
    }
}

#[test]
fn repricing_is_consistent_across_temperatures() {
    // One timing run priced at two temperatures: leakage joules differ,
    // cycle counts and event counts do not.
    let cfg = StudyConfig {
        insts: 40_000,
        ..StudyConfig::default()
    };
    let raw = execute(Benchmark::Perl, &Technique::drowsy(4096), &cfg, 11).expect("runs");
    let arrays = CacheArrays::table2_l1d();
    let cool = cfg.environment(85.0).expect("valid");
    let hot = cfg.environment(110.0).expect("valid");
    let technique = Technique::drowsy(4096);
    let p_cool = pricing::price(&raw, &technique, &cool, &arrays).expect("prices");
    let p_hot = pricing::price(&raw, &technique, &hot, &arrays).expect("prices");
    assert!(p_hot.leakage_j > p_cool.leakage_j * 1.3);
    assert_eq!(p_hot.seconds, p_cool.seconds);
}

#[test]
fn study_cache_reuses_baselines() {
    let study = Study::new(StudyConfig {
        insts: 30_000,
        ..StudyConfig::default()
    });
    let t0 = std::time::Instant::now();
    study
        .compare(Benchmark::Vpr, Technique::drowsy(4096), 11, 110.0)
        .expect("runs");
    let first = t0.elapsed();
    let t1 = std::time::Instant::now();
    study
        .compare(Benchmark::Vpr, Technique::drowsy(4096), 11, 85.0)
        .expect("runs");
    let second = t1.elapsed();
    assert!(
        second < first / 2,
        "re-pricing a cached pair must be much cheaper: {first:?} vs {second:?}"
    );
}

#[test]
fn variation_pricing_raises_savings_magnitude() {
    // With inter-die variation the baseline leaks more, so the *absolute*
    // joules saved grow; the net percentage stays in a sane band.
    let plain = Study::new(StudyConfig {
        insts: 30_000,
        ..StudyConfig::default()
    });
    let varied = Study::new(StudyConfig {
        insts: 30_000,
        variation: true,
        ..StudyConfig::default()
    });
    let p = plain
        .compare(Benchmark::Gzip, Technique::gated_vss(4096), 11, 110.0)
        .expect("runs");
    let v = varied
        .compare(Benchmark::Gzip, Technique::gated_vss(4096), 11, 110.0)
        .expect("runs");
    assert!(v.net_savings_pct > 0.0 && v.net_savings_pct < 100.0);
    // Variation raises leakage relative to fixed dynamic costs, so the
    // technique's net percentage cannot drop.
    assert!(v.net_savings_pct >= p.net_savings_pct - 0.5);
}

#[test]
fn core_over_real_trace_hits_plausible_ipc() {
    for (b, lo, hi) in [
        (Benchmark::Perl, 0.8, 2.5),
        (Benchmark::Mcf, 0.03, 0.6),
        (Benchmark::Gzip, 0.7, 2.2),
    ] {
        let mut core = table2_core(11, None).expect("valid");
        let mut trace = SpecTrace::new(b, 5);
        let stats = core.run(&mut trace, 60_000);
        let ipc = stats.ipc().get();
        assert!(ipc > lo && ipc < hi, "{b}: ipc {ipc} outside [{lo}, {hi}]");
    }
}

#[test]
fn leakage_energy_scale_is_coherent_across_crates() {
    // The leakage the pricing assigns to the baseline must equal the
    // structure model's power times the run's duration.
    let cfg = StudyConfig {
        insts: 30_000,
        ..StudyConfig::default()
    };
    let raw = execute(Benchmark::Gap, &Technique::none(), &cfg, 11).expect("runs");
    let arrays = CacheArrays::table2_l1d();
    let env = Environment::new(TechNode::N70, 0.9, 383.15).expect("valid");
    let priced = pricing::price(&raw, &Technique::none(), &env, &arrays).expect("prices");
    let expected_w = arrays.data.leakage_power(&env) + arrays.tags.leakage_power(&env);
    let actual_w = priced.leakage_j / priced.seconds;
    assert!(
        (actual_w - expected_w).get().abs() / expected_w.get() < 1e-9,
        "baseline leakage {actual_w} W must equal the array model {expected_w} W"
    );
}

#[test]
fn trace_generators_feed_core_without_region_aliasing() {
    // No two address regions may map to the same cache set+tag pair in a
    // way that creates accidental sharing: run a trace and check the cache
    // never reports more distinct tags than the generator produced lines.
    let mut trace = SpecTrace::new(Benchmark::Twolf, 3);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..50_000 {
        let op = trace.next_op().expect("endless");
        if op.class.is_mem() {
            seen.insert(op.mem_addr & !63);
        }
    }
    assert!(seen.len() > 100, "twolf must touch a real footprint");
}
