//! The fidelity tier: prediction-vs-simulation knee oracle + golden data.
//!
//! Two guards (see `simcore::fidelity`):
//!
//! * the analytic knee predictor must land within one power of two of the
//!   simulated best decay interval for every benchmark, both techniques,
//!   at every studied L2 latency;
//! * the whole figure pipeline must match the checked-in JSON goldens
//!   under per-metric relative tolerances.
//!
//! The default tests run a reduced-instruction fast tier; the `#[ignore]`d
//! ones repeat both checks at the full paper length. Regenerate goldens
//! with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test fidelity
//! UPDATE_GOLDENS=1 cargo test --test fidelity -- --ignored   # full tier
//! ```
//!
//! Under `--features seeded-knee-bug` (the CI mutation smoke) both guards
//! must FAIL — that build plants a decay-machinery bug the harness exists
//! to catch.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use simcore::fidelity::{self, Tolerances, ORACLE_L2_LATENCIES};
use simcore::{Study, StudyConfig};

/// Reduced run length for the default (fast) tier: long enough that every
/// benchmark's resident set develops its reuse pattern, short enough that
/// the 660-run sweep stays in tens of seconds.
const FAST_INSTS: u64 = 40_000;

/// The paper-length tier (matches `tests/paper_shape.rs`).
const FULL_INSTS: u64 = 250_000;

fn fast_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::new(StudyConfig::with_insts(FAST_INSTS)))
}

fn full_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::new(StudyConfig::with_insts(FULL_INSTS)))
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn updating_goldens() -> bool {
    std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1")
}

fn assert_oracle_agrees(study: &Study) {
    let report =
        fidelity::knee_oracle(study, &ORACLE_L2_LATENCIES, 110.0).expect("oracle pipeline runs");
    assert_eq!(
        report.rows.len(),
        11 * 2 * ORACLE_L2_LATENCIES.len(),
        "one row per benchmark x technique x L2 latency"
    );
    assert!(
        report.mismatches().is_empty(),
        "{}",
        report.render_mismatches()
    );
}

fn assert_goldens_match(study: &Study, file: &str) {
    let set = fidelity::collect_goldens(study, 110.0).expect("figure pipeline runs");
    let fresh = serde_json::to_string_pretty(&set).expect("snapshot serializes");
    let path = goldens_dir().join(file);
    if updating_goldens() {
        fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        fs::write(&path, fresh + "\n").expect("write golden");
        return;
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\nregenerate with UPDATE_GOLDENS=1 cargo test --test fidelity",
            path.display()
        )
    });
    let expected = serde_json::from_str(&text).expect("checked-in golden parses");
    let actual = serde_json::from_str(&fresh).expect("fresh snapshot parses");
    let diffs = fidelity::diff_values(&expected, &actual, &Tolerances::default());
    assert!(
        diffs.is_empty(),
        "figure pipeline drifted from {}\n{}",
        path.display(),
        fidelity::render_diffs(&diffs)
    );
}

#[test]
fn knee_oracle_within_one_power_of_two() {
    assert_oracle_agrees(fast_study());
}

#[test]
fn figures_match_fast_goldens() {
    assert_goldens_match(fast_study(), "fidelity_fast.json");
}

#[test]
fn goldens_regenerate_deterministically() {
    // Two snapshots from independent studies must be byte-identical —
    // the property that makes UPDATE_GOLDENS runs reproducible.
    let a = fidelity::collect_goldens(fast_study(), 110.0).expect("first snapshot");
    let other = Study::new(StudyConfig::with_insts(FAST_INSTS));
    let b = fidelity::collect_goldens(&other, 110.0).expect("second snapshot");
    assert_eq!(
        serde_json::to_string_pretty(&a).expect("serializes"),
        serde_json::to_string_pretty(&b).expect("serializes"),
        "golden snapshots must not depend on cache state or thread timing"
    );
}

#[test]
#[ignore = "full paper-length tier (minutes); run with --ignored"]
fn knee_oracle_full_tier() {
    assert_oracle_agrees(full_study());
}

#[test]
#[ignore = "full paper-length tier (minutes); run with --ignored"]
fn figures_match_full_goldens() {
    assert_goldens_match(full_study(), "fidelity_full.json");
}
